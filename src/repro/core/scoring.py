"""The ranking function ``ST`` of Eqn. (1) and its score decompositions.

``ST(o, q) = ws · (1 − SDist(o, q)) + wt · TSim(o, q)``

:class:`Scorer` binds a database (for distance normalisation) to a text
similarity model and exposes:

* per-object scores and their (SDist, TSim) decomposition,
* the *dual coordinates* ``(a, b) = (1 − SDist, TSim)`` of an object
  under a query — the representation in which an object's score is the
  linear function ``w·a + (1−w)·b`` of the spatial weight, which is the
  foundation of the preference-adjustment module (DESIGN.md §3.3),
* exact ranking utilities shared by the brute-force engine, the why-not
  modules and the test oracles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable, Sequence

from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.query import QueryResult, RankedObject, SpatialKeywordQuery, Weights
from repro.text.similarity import JACCARD, TextSimilarityModel

__all__ = ["ScoreBreakdown", "DualPoint", "Scorer"]


@dataclass(frozen=True, slots=True)
class ScoreBreakdown:
    """An object's score together with its two normalised components."""

    score: float
    sdist: float
    tsim: float


@dataclass(frozen=True, slots=True)
class DualPoint:
    """Dual-space coordinates of an object under a fixed (loc, doc).

    ``a = 1 − SDist(o, q)`` (spatial proximity) and ``b = TSim(o, q)``.
    Under weights ``⟨w, 1−w⟩`` the object's score is the line
    ``f(w) = w·a + (1−w)·b``; two objects tie exactly where their lines
    cross (DESIGN.md §3.3).
    """

    oid: int
    a: float
    b: float

    def score_at(self, ws: float) -> float:
        """Score under spatial weight ``ws``."""
        return ws * self.a + (1.0 - ws) * self.b

    @property
    def slope(self) -> float:
        """d(score)/d(ws) — used by the rank-update theorem."""
        return self.a - self.b

    def crossover_with(self, other: "DualPoint") -> float | None:
        """Spatial weight where the two score lines intersect.

        Returns None when the lines are parallel (identical slope) —
        such pairs never change relative order, so they contribute no
        rank-change candidate.
        """
        denominator = self.slope - other.slope
        if denominator == 0.0:
            return None
        return (other.b - self.b) / denominator


class Scorer:
    """Evaluator of Eqn. (1) over a fixed database and text model."""

    def __init__(
        self,
        database: SpatialDatabase,
        *,
        text_model: TextSimilarityModel = JACCARD,
    ) -> None:
        self._database = database
        self._text_model = text_model

    @property
    def database(self) -> SpatialDatabase:
        return self._database

    @property
    def text_model(self) -> TextSimilarityModel:
        return self._text_model

    # ------------------------------------------------------------------
    # Component scores
    # ------------------------------------------------------------------
    def sdist(self, obj: SpatialObject, query: SpatialKeywordQuery) -> float:
        """Normalised spatial distance ``SDist(o, q)`` ∈ [0, 1]."""
        return self._database.normalized_distance(obj.loc, query.loc)

    def tsim(
        self, obj: SpatialObject, query_doc: AbstractSet[str]
    ) -> float:
        """Textual similarity ``TSim(o, q)`` ∈ [0, 1] (Eqn. 2 by default)."""
        return self._text_model.similarity(obj.doc, query_doc)

    def breakdown(
        self, obj: SpatialObject, query: SpatialKeywordQuery
    ) -> ScoreBreakdown:
        """Score an object, returning the full decomposition."""
        sdist = self.sdist(obj, query)
        tsim = self.tsim(obj, query.doc)
        score = query.ws * (1.0 - sdist) + query.wt * tsim
        return ScoreBreakdown(score=score, sdist=sdist, tsim=tsim)

    def score(self, obj: SpatialObject, query: SpatialKeywordQuery) -> float:
        """``ST(o, q)`` — Eqn. (1)."""
        return self.breakdown(obj, query).score

    # ------------------------------------------------------------------
    # Dual-space view (preference adjustment substrate)
    # ------------------------------------------------------------------
    def dual_point(
        self, obj: SpatialObject, query: SpatialKeywordQuery
    ) -> DualPoint:
        """Map an object to its dual coordinates under ``query``.

        Only ``query.loc`` and ``query.doc`` matter; the weights are the
        free variable in dual space.
        """
        sdist = self.sdist(obj, query)
        tsim = self.tsim(obj, query.doc)
        return DualPoint(oid=obj.oid, a=1.0 - sdist, b=tsim)

    def dual_points(self, query: SpatialKeywordQuery) -> list[DualPoint]:
        """Dual coordinates of every database object under ``query``."""
        return [self.dual_point(obj, query) for obj in self._database]

    # ------------------------------------------------------------------
    # Exact ranking (the reference semantics every engine must match)
    # ------------------------------------------------------------------
    def rank_all(self, query: SpatialKeywordQuery) -> list[RankedObject]:
        """Rank the whole database under ``query``.

        Deterministic total order: score descending, then oid ascending.
        """
        scored: list[tuple[float, SpatialObject, ScoreBreakdown]] = []
        for obj in self._database:
            breakdown = self.breakdown(obj, query)
            scored.append((breakdown.score, obj, breakdown))
        scored.sort(key=lambda item: (-item[0], item[1].oid))
        return [
            RankedObject(
                obj=obj, score=breakdown.score, sdist=breakdown.sdist,
                tsim=breakdown.tsim, rank=position,
            )
            for position, (_, obj, breakdown) in enumerate(scored, start=1)
        ]

    def top_k(self, query: SpatialKeywordQuery) -> QueryResult:
        """Brute-force top-k: the reference result per Definition 1."""
        ranking = self.rank_all(query)
        return QueryResult(query, ranking[: query.k])

    def rank_of(
        self, obj: SpatialObject, query: SpatialKeywordQuery
    ) -> int:
        """Exact rank of one object without materialising the full order.

        Counts objects that beat ``obj`` under the (score desc, oid asc)
        total order in a single scan — O(n) instead of O(n log n).
        """
        target_score = self.score(obj, query)
        better = 0
        for other in self._database:
            if other.oid == obj.oid:
                continue
            other_score = self.score(other, query)
            if other_score > target_score or (
                other_score == target_score and other.oid < obj.oid
            ):
                better += 1
        return better + 1

    def worst_rank(
        self,
        objects: Iterable[SpatialObject],
        query: SpatialKeywordQuery,
    ) -> int:
        """``R(M, q)``: the lowest (largest) rank among ``objects``.

        This is the quantity the penalty functions of Eqns. (3) and (4)
        are built on — "R(M, q) denotes the lowest rank of the missing
        objects under the query q".
        """
        targets = list(objects)
        if not targets:
            raise ValueError("worst_rank requires at least one object")
        # Single scan: for each database object count how many targets it
        # beats; equivalently compute each target's rank and take the max.
        scores = {t.oid: self.score(t, query) for t in targets}
        better_counts = {t.oid: 0 for t in targets}
        for other in self._database:
            other_score = self.score(other, query)
            for target in targets:
                if other.oid == target.oid:
                    continue
                target_score = scores[target.oid]
                if other_score > target_score or (
                    other_score == target_score and other.oid < target.oid
                ):
                    better_counts[target.oid] += 1
        return 1 + max(better_counts.values())

    def result_from_objects(
        self, query: SpatialKeywordQuery, objects: Sequence[SpatialObject]
    ) -> QueryResult:
        """Build a :class:`QueryResult` from already-selected objects.

        Used by index-based engines: the engine supplies the top-k
        objects, this re-scores them (cheap: k is small) and attaches
        rank positions.
        """
        entries = []
        for position, obj in enumerate(objects, start=1):
            breakdown = self.breakdown(obj, query)
            entries.append(
                RankedObject(
                    obj=obj, score=breakdown.score, sdist=breakdown.sdist,
                    tsim=breakdown.tsim, rank=position,
                )
            )
        return QueryResult(query, entries)
