"""Spatially partitioned databases: shards, routing and pruned scans.

The ROADMAP's "sharding" direction, grounded in the paper's rank
arithmetic: every quantity the why-not pipeline computes — ranks,
beater counts, dual-space sweeps — is a *count of objects* satisfying a
per-object predicate, so it decomposes exactly over any disjoint
partition of ``D``:

``rank_of(m, q) = 1 + Σ_shard count_better(shard, m, q)``

This module provides

* :func:`grid_partition` / :func:`round_robin_partition` — disjoint
  covers of a database.  The grid partitioner splits the data into
  quantile tiles (near-equal populations, spatially coherent — the
  QDR-Tree-style locality clustering of PAPERS.md); round-robin is the
  spatially incoherent ablation.
* :class:`Shard` — one partition: its own :class:`SpatialDatabase`
  (inheriting the parent dataspace so distance normalisation — and
  therefore every float — is identical), its own
  :class:`~repro.core.kernel.ScoringKernel`, and the summaries the
  pruning bounds need (objects MBR, keyword-union bitmask, doc-length
  range).
* :class:`ShardRouter` — builds and owns the shards, computes per-query
  shard score upper bounds, and counts scatter/skip work in
  :class:`ShardStats` (surfaced through ``GET /api/stats``).
* :class:`ShardedKernel` — a drop-in :class:`ScoringKernel` whose
  whole-database rank primitives (``count_better``, ``rank_of_many``,
  ``dual_view``, ``doc_context`` rank scans) *skip entire shards* that
  provably cannot contain a better-ranked object.

Why pruning, not just parallelism
---------------------------------

Scatter-gather over a thread pool gives wall-clock wins only with free
cores (see :class:`repro.service.sharded.ShardedEngine`, which fans
shards across a pool when they exist).  The floors of experiment E12
instead come from *work elimination*: with spatially coherent shards, a
query's beaters concentrate in the shards near it, and a shard whose
score upper bound falls below the current threshold contributes zero
scanned rows.  A single-shard router degenerates to exactly the
unsharded pass, which is what the E12 baseline measures.

Exactness contract
------------------

Skipping is an optimisation, never a semantics change.  A shard is
skipped only when its *score upper bound* is strictly below the target
score, so no object in it can rank above the target — not even via the
``(score desc, oid asc)`` tie-break, which needs score equality.  Two
kinds of bounds are used:

* **Static bounds** (:meth:`Shard.proximity_upper_bound` +
  :meth:`Shard.tsim_upper_bound`): MBR MINDIST for the spatial term and
  a keyword-union/doc-length bound for the text term.  The text bound
  is a single correctly-rounded integer division, hence exactly
  monotone; the MINDIST arithmetic is monotone too, but ``math.hypot``
  is only guaranteed faithful, so static skips retain a defensive
  ``1e-12`` margin.
* **Exact per-query maxima** (:class:`ShardedDualView`): the dual-space
  sweep skips shards via each shard's Pareto front over ``(a, b)`` —
  the float maximum of ``ws·a + wt·b`` over a shard *is attained on the
  front*, so the skip test compares against the true shard maximum and
  needs no margin.

``tests/properties/test_prop_sharding.py`` asserts bit-for-bit parity
of every primitive — and of whole why-not answers — against the
unsharded oracle across random databases, partitioners and shard
counts.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, AbstractSet, Callable, Iterable, Sequence

from dataclasses import dataclass

from repro import concurrency, faults
from repro.core.geometry import Rect
from repro.core.hotpath import hot_path
from repro.core.kernel import DocContext, DualView, ScoringKernel
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.query import SpatialKeywordQuery
from repro.text.similarity import TextSimilarityModel

if TYPE_CHECKING:  # pragma: no cover - scoring imports this module
    from repro.core.scoring import DualPoint

__all__ = [
    "PARTITIONERS",
    "Shard",
    "ShardRouter",
    "ShardStats",
    "ShardedDocContext",
    "ShardedDualView",
    "ShardedKernel",
    "ShardedProximityColumn",
    "grid_partition",
    "round_robin_partition",
]

#: Defensive margin for skip decisions built on MBR MINDIST bounds:
#: ``math.hypot`` is faithful (≤ 1 ulp ≈ 2e-16 here) rather than exactly
#: monotone, so static skips require the bound to sit this far below the
#: threshold.  Pruning power loss is negligible; unsafe skips impossible.
_SKIP_MARGIN = 1e-12


# ----------------------------------------------------------------------
# Partitioners
# ----------------------------------------------------------------------
def grid_partition(database: SpatialDatabase, shards: int) -> list[list[int]]:
    """Quantile-tile partition: ``cols × rows`` tiles of near-equal counts.

    The shard count is factored as ``cols · rows`` with ``cols`` the
    largest divisor not exceeding ``√shards`` (4 → 2×2, 6 → 2×3, a prime
    count → 1×N stripes).  Objects are split into ``cols`` x-quantile
    slices, each slice into ``rows`` y-quantile tiles — population-
    balanced regardless of the spatial distribution, and spatially
    coherent (each tile's MBR hugs its objects), which is what gives
    the pruning bounds their power.

    Returns per-shard lists of database row indices, ascending within
    each shard; every row appears in exactly one shard.
    """
    n = len(database)
    shards = _validated_shard_count(shards, n)
    cols = 1
    for divisor in range(1, int(math.isqrt(shards)) + 1):
        if shards % divisor == 0:
            cols = divisor
    rows = shards // cols
    objects = database.objects
    by_x = sorted(
        range(n), key=lambda row: (objects[row].loc.x, objects[row].loc.y, row)
    )
    assignments: list[list[int]] = []
    for slice_rows in _even_chunks(by_x, cols):
        by_y = sorted(
            slice_rows,
            key=lambda row: (objects[row].loc.y, objects[row].loc.x, row),
        )
        for tile in _even_chunks(by_y, rows):
            assignments.append(sorted(tile))
    return assignments


def round_robin_partition(
    database: SpatialDatabase, shards: int
) -> list[list[int]]:
    """Deal rows ``0, 1, 2, …`` across shards in turn.

    The spatially *incoherent* ablation: every shard's MBR spans the
    whole data extent, so the pruning bounds never fire and
    scatter-gather degenerates to a full scan split N ways — the
    benchmark uses it to show the speedup comes from spatial locality,
    not from partitioning per se.
    """
    n = len(database)
    shards = _validated_shard_count(shards, n)
    return [list(range(start, n, shards)) for start in range(shards)]


def _validated_shard_count(shards: int, n: int) -> int:
    if shards < 1:
        raise ValueError(f"shard count must be at least 1, got {shards}")
    # Never more shards than objects (each shard owns a non-empty
    # SpatialDatabase); callers asking for more get the maximum.
    return min(shards, n)


def _even_chunks(items: Sequence[int], parts: int) -> Iterable[Sequence[int]]:
    """Split ``items`` into ``parts`` contiguous chunks, sizes within 1."""
    base, extra = divmod(len(items), parts)
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        yield items[start : start + size]
        start += size


#: Named partition strategies (the CLI/engine ``partitioner=`` values).
PARTITIONERS: dict[str, Callable[[SpatialDatabase, int], list[list[int]]]] = {
    "grid": grid_partition,
    "round-robin": round_robin_partition,
}


# ----------------------------------------------------------------------
# Shard-level statistics
# ----------------------------------------------------------------------
class ShardStats:
    """Scatter/skip/merge work counters of one router.

    Mirrors :class:`~repro.core.kernel.KernelStats`' locking discipline:
    one router is shared by every executor worker thread, so updates go
    through :meth:`bump` under a lock.  The ``*_ms`` fields accumulate
    wall-clock milliseconds (scatter = per-shard scans, merge = the
    gather/materialise step); the ``*_shards_*`` pairs record how many
    shard scans the pruning bounds eliminated.
    """

    _FIELDS = (
        "topk_searches",
        "topk_shards_scanned",
        "topk_shards_skipped",
        "topk_scatter_ms",
        "topk_merge_ms",
        "count_passes",
        "count_shards_scanned",
        "count_shards_skipped",
        "dual_views",
        "dual_rank_passes",
        "dual_shards_scanned",
        "dual_shards_skipped",
        "doc_rank_scans",
        "doc_shards_scanned",
        "doc_shards_skipped",
    )

    __slots__ = ("_lock",) + _FIELDS

    def __init__(self) -> None:
        self._lock = concurrency.ordered_lock("shards.stats", concurrency.LEVEL_LEAF)
        for field in self._FIELDS:
            setattr(self, field, 0.0 if field.endswith("_ms") else 0)

    def bump(self, field: str, amount: float | int = 1) -> None:
        """Atomically add ``amount`` to one counter."""
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)

    def reset(self) -> None:
        with self._lock:
            for field in self._FIELDS:
                setattr(self, field, 0.0 if field.endswith("_ms") else 0)

    def to_dict(self) -> dict[str, float | int]:
        with self._lock:
            return {field: getattr(self, field) for field in self._FIELDS}


# ----------------------------------------------------------------------
# Shards and the router
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class _ShardChange:
    """A shard-local slice of an applied batch (kernel duck type)."""

    removed_oids: frozenset[int]
    appended: tuple[SpatialObject, ...]


class Shard:
    """One disjoint partition of the database, self-sufficient for scans.

    Owns a sub-:class:`SpatialDatabase` built with the *parent
    dataspace* — the normalisation constant, and therefore every
    ``SDist``/score float, is identical to the unsharded database — and
    a :class:`ScoringKernel` over it.  The shard-local vocabulary
    assigns different bit positions than the global one, which is
    irrelevant: every similarity formula consumes bit *counts* only.

    ``vocab_mask`` is the union of the shard's doc bitmasks in the
    *global* vocabulary's bit space, so query masks encoded once against
    the parent database can be intersected with every shard.
    """

    __slots__ = (
        "shard_id",
        "rows",
        "database",
        "kernel",
        "mbr",
        "vocab_mask",
        "min_doc_len",
        "max_doc_len",
    )

    def __init__(
        self,
        shard_id: int,
        parent: SpatialDatabase,
        rows: Sequence[int],
        text_model: TextSimilarityModel,
    ) -> None:
        if not rows:
            raise ValueError(f"shard {shard_id} would be empty")
        objects = parent.objects
        parent_masks = parent.doc_masks
        self.shard_id = shard_id
        self.rows: tuple[int, ...] = tuple(rows)
        self.database = SpatialDatabase(
            (objects[row] for row in rows), dataspace=parent.dataspace
        )
        kernel = ScoringKernel.maybe_build(self.database, text_model)
        if kernel is None:  # pragma: no cover - router validates the model
            raise ValueError(
                f"{type(text_model).__name__} has no columnar kernel; "
                "sharding requires one"
            )
        self.kernel = kernel
        self._recompute_summaries(parent_masks[row] for row in rows)

    def _recompute_summaries(self, masks) -> None:
        """Exact MBR / keyword-union / doc-length summaries from scratch.

        ``masks`` are the members' doc bitmasks in the *global*
        vocabulary's bit space, aligned with ``self.database.objects``.
        Shared by construction and the delete path of
        :meth:`apply_mutations` — a shrunken summary must never drift
        from the build-time definition or the pruning bounds over- or
        under-prune.
        """
        members = self.database.objects
        self.mbr = Rect.from_points(obj.loc for obj in members)
        union_mask = 0
        min_len = max_len = len(members[0].doc)
        for obj, mask in zip(members, masks):
            union_mask |= mask
            length = len(obj.doc)
            if length < min_len:
                min_len = length
            if length > max_len:
                max_len = length
        self.vocab_mask = union_mask
        self.min_doc_len = min_len
        self.max_doc_len = max_len

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------
    # Incremental maintenance (repro.core.mutations)
    # ------------------------------------------------------------------
    def apply_mutations(
        self,
        removed: Sequence[SpatialObject],
        appended: Sequence[SpatialObject],
        parent: SpatialDatabase,
    ) -> None:
        """Apply this shard's slice of a batch and refresh its summaries.

        The sub-database and kernel follow the global order rule
        (survivors keep order, appends at the end); the kernel compacts
        unconditionally so shard-local rows stay dense and
        ``Shard.rows`` remains a plain live-row map.  Summaries take the
        *widen-only fast path* on pure insertion — the MBR unions the
        new points, the vocab mask ORs the new masks, the doc-length
        range stretches; every bound stays valid because all three only
        ever loosen.  Any removal forces the exact recompute: a shrunken
        summary must not over-prune, so it is rebuilt from the surviving
        members.
        """
        removed_oids = {obj.oid for obj in removed}
        self.database._apply_mutations(removed_oids, appended)
        self.kernel.apply_mutations(
            _ShardChange(frozenset(removed_oids), tuple(appended)),
            force_compact=True,
        )
        encode = parent.vocabulary_index.encode
        if not removed_oids:
            # Widen-only fast path.
            self.mbr = self.mbr.union(
                Rect.from_points(obj.loc for obj in appended)
            )
            for obj in appended:
                self.vocab_mask |= encode(obj.doc)
                length = len(obj.doc)
                if length < self.min_doc_len:
                    self.min_doc_len = length
                if length > self.max_doc_len:
                    self.max_doc_len = length
            return
        # Exact recompute: deletions may tighten every summary.
        self._recompute_summaries(
            encode(obj.doc) for obj in self.database.objects
        )

    # ------------------------------------------------------------------
    # Static pruning bounds
    # ------------------------------------------------------------------
    def proximity_upper_bound(
        self, qx: float, qy: float, normaliser: float
    ) -> float:
        """``max_o (1 − SDist(o, q))`` bound from the objects MBR.

        MINDIST over the normaliser with the same clamp the kernel
        applies; monotone in each operation, so it dominates every
        shard object's proximity (see the module margin note for the
        ``hypot`` caveat).
        """
        mbr = self.mbr
        dx = max(mbr.min_x - qx, 0.0, qx - mbr.max_x)
        dy = max(mbr.min_y - qy, 0.0, qy - mbr.max_y)
        sdist = math.hypot(dx, dy) / normaliser
        if sdist > 1.0:
            sdist = 1.0
        return 1.0 - sdist

    def tsim_upper_bound(self, qmask: int, qlen: int) -> float:
        """``max_o TSim(o, q)`` bound from keyword union + doc lengths.

        With ``m = |q.doc ∩ shard vocabulary|`` (no shard object can
        share more than ``m`` keywords with the query) and
        ``ℓ = min_doc_len``:

        * Jaccard: ``s/(|o| + qlen − s)`` is maximised at ``s = m`` and
          ``|o| = max(ℓ, m)`` → ``m / (max(ℓ, m) + qlen − m)``.
        * Dice: ``2s/(|o| + qlen)`` → ``2m / (max(ℓ, m) + qlen)``.
        * Overlap: reaches 1 whenever some doc could sit inside the
          shared keywords (``m ≥ ℓ``); otherwise ``m / min(ℓ, qlen)``.

        Each bound is one correctly-rounded division of exact integers,
        so float monotonicity against the kernel's per-object values is
        exact — no margin needed on the text term.
        """
        m = (self.vocab_mask & qmask).bit_count()
        if m == 0 or qlen == 0:
            return 0.0
        code = self.kernel.model_code
        floor_len = max(self.min_doc_len, m)
        if code == "jaccard":
            return m / (floor_len + qlen - m)
        if code == "dice":
            return 2.0 * m / (floor_len + qlen)
        if m >= self.min_doc_len:
            return 1.0
        return min(1.0, m / min(self.min_doc_len, qlen))


class ShardRouter:
    """Partitions a database into shards and prices per-query bounds.

    Parameters
    ----------
    database:
        The parent :class:`SpatialDatabase` (shared with the engine).
    shards:
        Requested shard count (clamped to the object count).
    partitioner:
        A name from :data:`PARTITIONERS` (``"grid"`` default,
        ``"round-robin"`` ablation) or a callable
        ``(database, shards) -> list[list[int]]``.
    text_model:
        The engine's text model; must have a columnar kernel
        (Jaccard/Dice/Overlap by exact type) — sharded scans are built
        on the kernel's flat columns.
    """

    def __init__(
        self,
        database: SpatialDatabase,
        *,
        shards: int,
        partitioner: str | Callable[[SpatialDatabase, int], list[list[int]]] = "grid",
        text_model: TextSimilarityModel,
    ) -> None:
        if not ScoringKernel.supports(text_model):
            raise ValueError(
                f"{type(text_model).__name__} has no columnar kernel; "
                "sharding supports the exact set models (Jaccard/Dice/Overlap)"
            )
        if callable(partitioner):
            partition = partitioner
            self.partitioner_name = getattr(partitioner, "__name__", "custom")
        else:
            try:
                partition = PARTITIONERS[partitioner]
            except KeyError:
                raise ValueError(
                    f"unknown partitioner {partitioner!r}; "
                    f"expected one of {sorted(PARTITIONERS)}"
                ) from None
            self.partitioner_name = partitioner
        assignments = partition(database, shards)
        self._validate_partition(assignments, len(database))
        self._database = database
        self._shards = tuple(
            Shard(shard_id, database, rows, text_model)
            for shard_id, rows in enumerate(assignments)
        )
        # Global row → (shard index, shard-local row): the gather maps
        # for database-order materialisation and target lookups.
        shard_of = [0] * len(database)
        local_of = [0] * len(database)
        self._shard_of_oid: dict[int, int] = {}
        for index, shard in enumerate(self._shards):
            for local, row in enumerate(shard.rows):
                shard_of[row] = index
                local_of[row] = local
                self._shard_of_oid[database.objects[row].oid] = index
        self._shard_of_row = shard_of
        self._local_of_row = local_of
        self.stats = ShardStats()
        # Per-batch delta ledger for downstream listeners (the process
        # worker pool replays these against its remote kernels).  Keyed
        # by stable ``Shard.shard_id``, refreshed on every batch.
        self.last_shard_deltas: dict[
            int, tuple[tuple[int, ...], tuple[SpatialObject, ...]]
        ] = {}
        self.last_dropped: tuple[int, ...] = ()

    @staticmethod
    def _validate_partition(assignments: list[list[int]], n: int) -> None:
        seen: set[int] = set()
        total = 0
        for rows in assignments:
            if not rows:
                raise ValueError("partitioner produced an empty shard")
            total += len(rows)
            seen.update(rows)
        if total != n or seen != set(range(n)):
            raise ValueError(
                "partitioner must produce a disjoint cover of all rows"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def database(self) -> SpatialDatabase:
        return self._database

    @property
    def shards(self) -> tuple[Shard, ...]:
        return self._shards

    def __len__(self) -> int:
        return len(self._shards)

    def locate(self, row: int) -> tuple[int, int]:
        """``(shard index, shard-local row)`` of a global database row."""
        return self._shard_of_row[row], self._local_of_row[row]

    def shard_sizes(self) -> list[int]:
        return [len(shard) for shard in self._shards]

    def to_dict(self) -> dict[str, object]:
        """The ``GET /api/stats`` ``shards`` payload."""
        return {
            "count": len(self._shards),
            "partitioner": self.partitioner_name,
            "objects": self.shard_sizes(),
            **self.stats.to_dict(),
        }

    # ------------------------------------------------------------------
    # Incremental maintenance (repro.core.mutations)
    # ------------------------------------------------------------------
    def _choose_shard(self, obj: SpatialObject) -> int:
        """Route an inserted object to the shard its location enlarges least.

        Ties break by current population (fewest objects first), then
        shard index — deterministic, and biased toward keeping shard
        sizes balanced when several shards already cover the point.
        """
        best_index = 0
        best_key: tuple[float, int, int] | None = None
        rect = Rect.from_point(obj.loc)
        for index, shard in enumerate(self._shards):
            key = (shard.mbr.enlargement(rect), len(shard), index)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        return best_index

    def apply_mutations(self, change) -> None:
        """Route an applied batch to its owning shards and refresh maps.

        ``change`` is an :class:`repro.core.mutations.AppliedBatch`; the
        parent database (shared with the engine) has already been
        updated.  Removals go to the shard that owns each object;
        insertions to the least-enlarged shard.  A shard left empty is
        dropped.  The global row maps (``locate``, ``Shard.rows``) are
        rebuilt from the parent's post-batch object order in one pass.
        """
        per_shard_removed: dict[int, list[SpatialObject]] = {}
        for obj in change.removed:
            index = self._shard_of_oid.pop(obj.oid)
            per_shard_removed.setdefault(index, []).append(obj)
        per_shard_appended: dict[int, list[SpatialObject]] = {}
        for obj in change.appended:
            index = self._choose_shard(obj)
            per_shard_appended.setdefault(index, []).append(obj)
        survivors: list[Shard] = []
        deltas: dict[int, tuple[tuple[int, ...], tuple[SpatialObject, ...]]] = {}
        dropped: list[int] = []
        for index, shard in enumerate(self._shards):
            removed = per_shard_removed.get(index, [])
            appended = per_shard_appended.get(index, [])
            if len(removed) == len(shard) and not appended:
                dropped.append(shard.shard_id)
                continue  # emptied: drop the shard
            if removed or appended:
                shard.apply_mutations(removed, appended, self._database)
                deltas[shard.shard_id] = (
                    tuple(obj.oid for obj in removed),
                    tuple(appended),
                )
            survivors.append(shard)
        self._shards = tuple(survivors)
        self.last_shard_deltas = deltas
        self.last_dropped = tuple(dropped)
        self._rebuild_row_maps()

    def _rebuild_row_maps(self) -> None:
        """Recompute global-row ↔ (shard, local) maps after a batch.

        Shard sub-databases and the parent share one order rule, so each
        shard's members appear in parent order; one oid → parent-row
        table rebuilds everything.
        """
        parent_row = {
            obj.oid: row for row, obj in enumerate(self._database.objects)
        }
        n = len(self._database)
        shard_of = [0] * n
        local_of = [0] * n
        shard_of_oid: dict[int, int] = {}
        for index, shard in enumerate(self._shards):
            rows = []
            for local, obj in enumerate(shard.database.objects):
                row = parent_row[obj.oid]
                rows.append(row)
                shard_of[row] = index
                local_of[row] = local
                shard_of_oid[obj.oid] = index
            shard.rows = tuple(rows)
        self._shard_of_row = shard_of
        self._local_of_row = local_of
        self._shard_of_oid = shard_of_oid

    # ------------------------------------------------------------------
    # Per-query shard bounds
    # ------------------------------------------------------------------
    def score_upper_bounds(self, query: SpatialKeywordQuery) -> list[float]:
        """Static score upper bound of every shard under ``query``.

        ``ws · proximity_ub + wt · tsim_ub`` — float-monotone above every
        shard object's true score (modulo the documented ``hypot``
        margin, which skip decisions apply).
        """
        qmask, _unknown = self._database.vocabulary_index.encode_query(query.doc)
        qlen = len(query.doc)
        qx, qy = query.loc.x, query.loc.y
        normaliser = self._database.distance_normaliser
        ws, wt = query.ws, query.wt
        return [
            ws * shard.proximity_upper_bound(qx, qy, normaliser)
            + wt * shard.tsim_upper_bound(qmask, qlen)
            for shard in self._shards
        ]


# ----------------------------------------------------------------------
# Sharded kernel substrate
# ----------------------------------------------------------------------
class ShardedProximityColumn(list):
    """Database-order proximity column annotated with per-shard views.

    A plain ``list`` (drop-in for consumers indexing by global row) that
    additionally carries per-shard slices and their exact maxima, which
    the sharded candidate rank scans use for skip decisions.
    """

    __slots__ = ("shard_slices", "shard_maxima")

    def __init__(
        self,
        values: Sequence[float],
        shard_slices: Sequence[Sequence[float]],
        shard_maxima: Sequence[float],
    ) -> None:
        super().__init__(values)
        self.shard_slices = shard_slices
        self.shard_maxima = shard_maxima


class ShardedDocContext(DocContext):
    """A candidate keyword set encoded for per-shard pruned rank scans.

    ``tsim_row`` stays the inherited global-column arithmetic; only the
    full-database :meth:`rank_scan` changes, skipping shards whose
    ``ws · prox_max + wt · tsim_ub`` cannot reach the target score.
    The proximity maxima are exact per-shard column maxima and the text
    bound is exactly monotone, so the skip needs no margin.
    """

    __slots__ = ("_doc", "_shard_masks")

    def __init__(self, kernel: "ShardedKernel", doc: AbstractSet[str]) -> None:
        super().__init__(kernel, doc)
        self._doc = doc
        # Shard-local query masks, built lazily per scanned shard (most
        # shards are skipped; encoding against their vocabularies would
        # be wasted work).
        self._shard_masks: dict[int, int] = {}

    def _shard_mask(self, shard_index: int) -> int:
        mask = self._shard_masks.get(shard_index)
        if mask is None:
            shard = self._kernel.router.shards[shard_index]
            mask, _unknown = shard.kernel.vocabulary.encode_query(self._doc)
            self._shard_masks[shard_index] = mask
        return mask

    @hot_path
    def rank_scan(
        self,
        ws: float,
        wt: float,
        proximities: Sequence[float],
        target_oid: int,
    ) -> int:
        kernel: ShardedKernel = self._kernel  # type: ignore[assignment]
        if not isinstance(proximities, ShardedProximityColumn):
            # A caller-supplied plain column: no shard maxima to prune
            # with — fall back to the global scan (identical result).
            return super().rank_scan(ws, wt, proximities, target_oid)
        kernel.stats.bump("doc_rank_scans")
        router = kernel.router
        stats = router.stats
        stats.bump("doc_rank_scans")
        target_row = kernel.row_of(target_oid)
        theta = ws * proximities[target_row] + wt * self.tsim_row(target_row)
        target_shard, target_local = router.locate(target_row)
        qlen = self.length
        beaters = 0
        scanned = 0
        skipped = 0
        for index, shard in enumerate(router.shards):
            faults.check_deadline()
            tsim_ub = shard.tsim_upper_bound(self.mask, qlen)
            if ws * proximities.shard_maxima[index] + wt * tsim_ub < theta:
                skipped += 1
                continue
            scanned += 1
            shard_kernel = shard.kernel
            qmask = self._shard_mask(index)
            prox = proximities.shard_slices[index]
            masks = shard_kernel._masks
            lens = shard_kernel._lens
            oids = shard_kernel._oids
            skip_local = target_local if index == target_shard else -1
            code = self._code
            for local in range(len(shard)):
                if local == skip_local:
                    continue
                shared = (masks[local] & qmask).bit_count()
                if shared == 0:
                    tsim = 0.0
                elif code == "jaccard":
                    tsim = shared / (lens[local] + qlen - shared)
                elif code == "dice":
                    tsim = 2.0 * shared / (lens[local] + qlen)
                else:
                    tsim = shared / min(lens[local], qlen)
                score = ws * prox[local] + wt * tsim
                if score > theta or (score == theta and oids[local] < target_oid):
                    beaters += 1
        stats.bump("doc_shards_scanned", scanned)
        stats.bump("doc_shards_skipped", skipped)
        return beaters + 1


class ShardedDualView:
    """Per-shard dual columns with shard bounding boxes for the sweep.

    Drop-in for :class:`~repro.core.kernel.DualView` as the preference
    module consumes it.  Each shard carries its own ``(a, b)`` columns
    plus its dual bounding box: since weights are non-negative, the box
    corner ``w_s·a_max + w_t·b_max`` dominates every shard point in
    float arithmetic (the maxima are exact column maxima and float
    multiply/add are monotone), so a rank evaluation skips every shard
    whose corner bound is strictly below the target score — no margin,
    no approximation risk.  With spatially coherent shards the corner
    is nearly attained (dense shards hold a near-corner object), so
    little pruning power is lost over an exact per-weight maximum while
    the box costs four C-speed ``min``/``max`` passes per query.
    """

    __slots__ = (
        "_kernel",
        "_views",
        "_fronts",
        "_a_min",
        "_a_max",
        "_b_min",
        "_b_max",
    )

    def __init__(self, kernel: "ShardedKernel", views: Sequence[DualView]) -> None:
        self._kernel = kernel
        self._views = tuple(views)
        if len(self._views) == 1:
            # Single-shard routers (the E12 scatter baseline) cannot
            # skip anything: every evaluation scans the one shard, so
            # bounding boxes would be pure build overhead.
            self._fronts = None
            self._a_min = self._a_max = self._b_min = self._b_max = None
            return
        # Lazily-built Pareto fronts (see _front_max).
        self._fronts: list[tuple[tuple[float, float], ...] | None] | None = (
            [None] * len(self._views)
        )
        self._a_min = [min(view.a) for view in self._views]
        self._a_max = [max(view.a) for view in self._views]
        self._b_min = [min(view.b) for view in self._views]
        self._b_max = [max(view.b) for view in self._views]

    def _front_max(self, index: int, ws: float, wt: float) -> float:
        """Exact float maximum of ``ws·a + wt·b`` over shard ``index``.

        The maximum over a shard is attained on its Pareto front (a
        dominated point's float score never exceeds its dominator's —
        multiply/add by non-negative weights are monotone), so this is
        the true shard maximum, not a bound.  Fronts are built lazily,
        once per view, and only for shards the O(1) box-corner test
        could not skip — the sort is paid where it can pay off.
        """
        front = self._fronts[index]
        if front is None:
            view = self._views[index]
            pairs = sorted(zip(view.a, view.b), reverse=True)
            built: list[tuple[float, float]] = []
            best_b = -math.inf
            for a, b in pairs:
                if b > best_b:
                    built.append((a, b))
                    best_b = b
            front = tuple(built)
            self._fronts[index] = front
        return max(ws * a + wt * b for a, b in front)

    # ------------------------------------------------------------------
    # Lookup and materialisation
    # ------------------------------------------------------------------
    def _locate_oid(self, oid: int) -> tuple[int, int]:
        kernel = self._kernel
        return kernel.router.locate(kernel.row_of(oid))

    def row_of(self, oid: int) -> int:
        """Global database row of ``oid`` (mirrors ``DualView.row_of``)."""
        return self._kernel.row_of(oid)

    def dual_point_of(self, oid: int) -> "DualPoint":
        """The one object's :class:`DualPoint` (mirrors ``DualView``)."""
        from repro.core.scoring import DualPoint

        shard_index, local = self._locate_oid(oid)
        view = self._views[shard_index]
        return DualPoint(oid=oid, a=view.a[local], b=view.b[local])

    def dual_points(self) -> "list[DualPoint]":
        """Materialise every object's :class:`DualPoint`, database order."""
        from repro.core.scoring import DualPoint

        out: list[DualPoint | None] = [None] * len(self._kernel)
        for shard, view in zip(self._kernel.router.shards, self._views):
            points = map(DualPoint._make, zip(view.oids, view.a, view.b))
            for row, point in zip(shard.rows, points):
                out[row] = point
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Sweep primitives (DualView interface, shard-pruned)
    # ------------------------------------------------------------------
    @hot_path
    def ranks_at(
        self, ws: float, wt: float, target_oids: Sequence[int]
    ) -> dict[int, int]:
        """Exact ranks at weights ``(ws, wt)``; skips hopeless shards."""
        router = self._kernel.router
        stats = router.stats
        stats.bump("dual_rank_passes")
        views = self._views
        targets: list[tuple[int, float, int, int]] = []
        for oid in target_oids:
            shard_index, local = self._locate_oid(oid)
            view = views[shard_index]
            targets.append(
                (oid, ws * view.a[local] + wt * view.b[local], shard_index, local)
            )
        beaten = {oid: 0 for oid, _, _, _ in targets}
        scanned = 0
        skipped = 0
        a_max = self._a_max
        b_max = self._b_max
        for index, view in enumerate(views):
            faults.check_deadline()
            if a_max is not None:
                corner = ws * a_max[index] + wt * b_max[index]
                live = [t for t in targets if corner >= t[1]]
                if live:
                    # Box corner could not rule the shard out — decide
                    # with the exact per-weight shard maximum.
                    front_max = self._front_max(index, ws, wt)
                    live = [t for t in live if front_max >= t[1]]
                if not live:
                    skipped += 1
                    continue
            else:
                live = targets
            scanned += 1
            scores = [ws * a + wt * b for a, b in zip(view.a, view.b)]
            oids = view.oids
            for oid, target_score, target_shard, target_local in live:
                # Strictly-greater count at C speed; the (rare) exact
                # score ties fall back to an explicit oid-ordered walk.
                count = sum(map(target_score.__lt__, scores))
                ties = scores.count(target_score)
                if index == target_shard:
                    ties -= 1  # the target's own row
                if ties:
                    skip_local = target_local if index == target_shard else -1
                    count += sum(
                        1
                        for local, score in enumerate(scores)
                        if score == target_score
                        and local != skip_local
                        and oids[local] < oid
                    )
                beaten[oid] += count
        stats.bump("dual_shards_scanned", scanned)
        stats.bump("dual_shards_skipped", skipped)
        return {oid: count + 1 for oid, count in beaten.items()}

    def crossing_candidates(self, target_oid: int) -> "list[DualPoint]":
        """Objects whose score lines cross the target's — database order.

        A shard is skipped when its ``(a, b)`` bounding box cannot reach
        either open quadrant of the target point; the per-point product
        test inside scanned shards is the oracle's own expression.
        """
        from repro.core.scoring import DualPoint

        kernel = self._kernel
        router = kernel.router
        shard_index, local = self._locate_oid(target_oid)
        view = self._views[shard_index]
        am = view.a[local]
        bm = view.b[local]
        found: list[tuple[int, DualPoint]] = []
        for index, shard_view in enumerate(self._views):
            if self._a_max is not None:
                low_high = self._a_max[index] > am and self._b_min[index] < bm
                high_low = self._a_min[index] < am and self._b_max[index] > bm
                if not (low_high or high_low):
                    continue
            rows = router.shards[index].rows
            oids = shard_view.oids
            for pos, (a, b) in enumerate(zip(shard_view.a, shard_view.b)):
                if (a - am) * (b - bm) < 0.0:
                    found.append((rows[pos], DualPoint(oid=oids[pos], a=a, b=b)))
        found.sort()
        return [point for _, point in found]

    @hot_path
    def strictly_above_at_zero(self, target_oid: int) -> int:
        """Objects strictly outranking the target as ``w → 0+``."""
        shard_index, local = self._locate_oid(target_oid)
        view = self._views[shard_index]
        am = view.a[local]
        bm = view.b[local]
        above = 0
        for index, shard_view in enumerate(self._views):
            if self._b_max is not None and self._b_max[index] < bm:
                continue
            for a, b in zip(shard_view.a, shard_view.b):
                if b > bm or (b == bm and a > am):
                    above += 1
        return above

    @hot_path
    def permanent_ties_smaller(self, target_oid: int) -> int:
        """Objects with an identical score line and a smaller object id."""
        shard_index, local = self._locate_oid(target_oid)
        view = self._views[shard_index]
        am = view.a[local]
        bm = view.b[local]
        ties = 0
        for index, shard_view in enumerate(self._views):
            if self._a_min is not None and not (
                self._a_min[index] <= am <= self._a_max[index]
                and self._b_min[index] <= bm <= self._b_max[index]
            ):
                continue
            oids = shard_view.oids
            for pos, (a, b) in enumerate(zip(shard_view.a, shard_view.b)):
                if a == am and b == bm and oids[pos] < target_oid:
                    ties += 1
        return ties


class ShardedKernel(ScoringKernel):
    """A :class:`ScoringKernel` whose rank primitives scan shard-wise.

    Inherits the global flat columns — whole-database passes
    (``components_all``, ``score_all``, ``order_rows``, prepared
    queries) are the plain kernel's and stay bit-identical — and
    overrides the primitives where disjointness buys work elimination:

    * :meth:`count_better` / :meth:`rank_of_many` — per-shard counts
      behind the static score upper bounds;
    * :meth:`dual_view` — a :class:`ShardedDualView` whose sweep
      evaluations skip shards via exact Pareto-front maxima;
    * :meth:`proximities` — a :class:`ShardedProximityColumn` carrying
      the per-shard maxima the candidate rank scans prune with;
    * :meth:`doc_context` — a :class:`ShardedDocContext`.

    Shard scans reuse each shard's own kernel columns (same formulas,
    same normaliser — the sub-databases inherit the parent dataspace),
    so every float is identical to the global pass.
    """

    __slots__ = ("router",)

    def __init__(
        self,
        database: SpatialDatabase,
        text_model: TextSimilarityModel,
        router: ShardRouter,
    ) -> None:
        if router.database is not database:
            raise ValueError("router and kernel must share the same database")
        super().__init__(database, text_model)
        self.router = router

    @classmethod
    def maybe_build(  # type: ignore[override]
        cls,
        database: SpatialDatabase,
        text_model: TextSimilarityModel,
        router: ShardRouter | None = None,
    ) -> "ScoringKernel | None":
        """Build a sharded kernel, or fall back like the base builder."""
        if not cls.supports(text_model):
            return None
        if router is None:
            return ScoringKernel(database, text_model)
        return cls(database, text_model, router)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def apply_mutations(self, change, *, force_compact: bool = True) -> None:
        """Maintain the global columns, always compacting.

        Shard row maps (``Shard.rows``, ``ShardRouter.locate``) index
        the global columns by physical row; keeping them dense makes
        those maps plain parent-database positions.  The router rebuilds
        them right after this listener runs.
        """
        super().apply_mutations(change, force_compact=True)

    # ------------------------------------------------------------------
    # Rank primitives (shard-pruned)
    # ------------------------------------------------------------------
    @hot_path
    def count_better(
        self, score: float, oid: int, query: SpatialKeywordQuery
    ) -> int:
        self.stats.bump("count_better_calls")
        router = self.router
        stats = router.stats
        stats.bump("count_passes")
        bounds = router.score_upper_bounds(query)
        threshold = score - _SKIP_MARGIN
        better = 0
        scanned = 0
        skipped = 0
        for shard, bound in zip(router.shards, bounds):
            faults.check_deadline()
            if bound < threshold:
                skipped += 1
                continue
            scanned += 1
            better += shard.kernel.count_better(score, oid, query)
        stats.bump("count_shards_scanned", scanned)
        stats.bump("count_shards_skipped", skipped)
        return better

    @hot_path
    def rank_of_many(
        self, target_oids: Iterable[int], query: SpatialKeywordQuery
    ) -> dict[int, int]:
        self.stats.bump("rank_of_many_calls")
        router = self.router
        stats = router.stats
        stats.bump("count_passes")
        prepared = self.prepare(query)
        targets = [(oid, prepared.score_oid(oid)) for oid in target_oids]
        prepared.flush_stats()  # target scorings are real point scores
        bounds = router.score_upper_bounds(query)
        beaten = {oid: 0 for oid, _ in targets}
        scanned = 0
        skipped = 0
        for shard, bound in zip(router.shards, bounds):
            faults.check_deadline()
            live = [t for t in targets if bound >= t[1] - _SKIP_MARGIN]
            if not live:
                skipped += 1
                continue
            scanned += 1
            shard_kernel = shard.kernel
            scores = shard_kernel._score_list(query)
            oids = shard_kernel._oids
            row_of = shard_kernel._row_of
            for oid, target_score in live:
                skip_local = row_of.get(oid, -1)
                count = 0
                for local, other_score in enumerate(scores):
                    if other_score > target_score:
                        count += 1
                    elif (
                        other_score == target_score
                        and local != skip_local
                        and oids[local] < oid
                    ):
                        count += 1
                beaten[oid] += count
        stats.bump("count_shards_scanned", scanned)
        stats.bump("count_shards_skipped", skipped)
        return {oid: count + 1 for oid, count in beaten.items()}

    # ------------------------------------------------------------------
    # Dual-space and candidate substrates
    # ------------------------------------------------------------------
    def dual_view(self, query: SpatialKeywordQuery) -> ShardedDualView:  # type: ignore[override]
        self.stats.bump("dual_views")
        self.router.stats.bump("dual_views")
        views = [
            shard.kernel.dual_view(query) for shard in self.router.shards
        ]
        return ShardedDualView(self, views)

    def proximities(self, query: SpatialKeywordQuery) -> ShardedProximityColumn:  # type: ignore[override]
        slices = [
            shard.kernel.proximities(query) for shard in self.router.shards
        ]
        values: list[float] = [0.0] * self._n
        for shard, piece in zip(self.router.shards, slices):
            for row, value in zip(shard.rows, piece):
                values[row] = value
        return ShardedProximityColumn(
            values, slices, [max(piece) for piece in slices]
        )

    def doc_context(self, doc: AbstractSet[str]) -> ShardedDocContext:
        self.stats.bump("doc_contexts")
        return ShardedDocContext(self, doc)
