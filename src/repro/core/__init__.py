"""Core query model: geometry, objects, scoring (Eqn. 1), top-k engines.

The public names here are the vocabulary of the whole library: build a
:class:`SpatialDatabase` of :class:`SpatialObject`, pose a
:class:`SpatialKeywordQuery`, and evaluate it with a
:class:`Scorer`-backed engine from :mod:`repro.core.topk`.
"""

from repro.core.geometry import EPSILON, Point, Rect
from repro.core.kernel import KernelStats, ScoringKernel
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.query import (
    DEFAULT_WEIGHTS,
    QueryResult,
    RankedObject,
    SpatialKeywordQuery,
    Weights,
)
from repro.core.scoring import DualPoint, ScoreBreakdown, Scorer
from repro.core.sharding import (
    PARTITIONERS,
    Shard,
    ShardRouter,
    ShardStats,
    ShardedKernel,
    grid_partition,
    round_robin_partition,
)
from repro.core.topk import (
    BestFirstTopK,
    BruteForceTopK,
    SearchStats,
    SpatioTextualIndex,
    TopKEngine,
)

__all__ = [
    "EPSILON",
    "Point",
    "Rect",
    "KernelStats",
    "ScoringKernel",
    "SpatialDatabase",
    "SpatialObject",
    "DEFAULT_WEIGHTS",
    "QueryResult",
    "RankedObject",
    "SpatialKeywordQuery",
    "Weights",
    "DualPoint",
    "ScoreBreakdown",
    "Scorer",
    "PARTITIONERS",
    "Shard",
    "ShardRouter",
    "ShardStats",
    "ShardedKernel",
    "grid_partition",
    "round_robin_partition",
    "BestFirstTopK",
    "BruteForceTopK",
    "SearchStats",
    "SpatioTextualIndex",
    "TopKEngine",
]
