"""Columnar scoring kernel: the batch hot paths of Eqn. (1).

Everything above this module — the brute-force oracle, best-first leaf
scoring, the why-not modules' full-database rank scans — ultimately
evaluates ``ST(o, q) = ws · (1 − SDist) + wt · TSim`` over many objects
for one query.  The object-at-a-time path pays a Python method call, a
``frozenset`` intersection and a dataclass allocation per object; this
kernel stores the database once as parallel flat columns

* ``array('d')`` x/y coordinates,
* interned doc bitmasks (one Python ``int`` per object, bit positions
  assigned by :class:`repro.text.vocabulary.Vocabulary`),
* ``array('q')`` doc lengths and object ids,

and evaluates whole-database passes in tight loops where Jaccard, Dice
and Overlap become integer bit arithmetic:
``|o.doc ∩ q.doc| = (mask & qmask).bit_count()``.

Float parity contract
---------------------

The kernel is an *optimisation*, never a semantics change: every number
it produces must be bit-for-bit identical to the set-based path in
:class:`repro.core.scoring.Scorer` (which remains the semantics oracle).
Each formula below therefore mirrors its set-path counterpart operation
by operation — same operand order, same division, same ``min`` clamp —
and the supported text models are matched by *exact type* so a subclass
overriding ``similarity`` can never be silently mis-kerneled.
``tests/properties/test_prop_kernel.py`` asserts the parity across
models, tie orders and empty-doc edge cases.
"""

from __future__ import annotations

import math
from array import array
from heapq import nsmallest
from operator import neg
from typing import TYPE_CHECKING, AbstractSet, Iterable, Mapping, Sequence

from repro import concurrency
from repro.core.hotpath import hot_path
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.query import SpatialKeywordQuery
from repro.text.similarity import (
    DiceSimilarity,
    JaccardSimilarity,
    OverlapSimilarity,
    TextSimilarityModel,
)

if TYPE_CHECKING:  # pragma: no cover - scoring imports this module
    from repro.core.scoring import DualPoint
    from repro.text.vocabulary import Vocabulary

__all__ = [
    "KernelStats",
    "ScoringKernel",
    "KernelQuery",
    "DocContext",
    "DualView",
    "score_delta_rows",
]


#: Exact-type dispatch: the kernel replicates each model's float formula
#: operation for operation, so only these precise classes qualify — a
#: subclass may override ``similarity`` and must fall back to sets.
_MODEL_CODES: dict[type, str] = {
    JaccardSimilarity: "jaccard",
    DiceSimilarity: "dice",
    OverlapSimilarity: "overlap",
}

#: Tombstone sentinels.  A deleted row is not spliced out of the columns
#: (that would renumber every row behind it); instead its cells are
#: overwritten so the unchanged scan loops render it *inert*:
#:
#: * coordinates ``_DEAD_COORD`` put it beyond any dataspace, so its
#:   clamped SDist is 1 and its proximity 0;
#: * an empty mask makes every TSim 0 (all formulas gate on shared > 0);
#: * hence its score is exactly 0.0 under any query and weights, which
#:   can never *strictly* beat anything, and
#: * the oid sentinel — larger than any real id — loses every
#:   (score desc, oid asc) tie-break, so a dead row is never counted as
#:   a beater even against a true score of 0.0.
#:
#: Only the materialising entry points (``order_rows`` and the top-k
#: candidate scan, which would otherwise emit rows, and ``DualView``
#: point materialisation) need an explicit liveness filter; every
#: counting scan is tombstone-oblivious by the argument above.
_DEAD_OID = 1 << 62
_DEAD_COORD = 1e300

#: Default tombstone fraction beyond which a mutation batch triggers
#: compaction (dead rows physically dropped, rows renumbered).
DEFAULT_COMPACTION_THRESHOLD = 0.25


def score_delta_rows(
    rows: Sequence[tuple[float, float, int, int, int]],
    qx: float,
    qy: float,
    qmask: int,
    qlen: int,
    ws: float,
    wt: float,
    *,
    normaliser: float,
    model_code: str,
) -> list[tuple[int, float, float, float]]:
    """Score pre-encoded rows against prepared query scalars.

    ``(oid, score, sdist, tsim)`` per ``(x, y, mask, doc_len, oid)``
    row — the same hypot / diagonal division / clamp / convex
    combination as :meth:`ScoringKernel.components_all`, so the floats
    are bit-identical to what a full column pass (or
    ``Scorer.breakdown``) produces for the same object.

    This is the cache-maintenance primitive: a mutation batch carries
    its added and removed objects as pre-encoded rows
    (:class:`repro.core.mutations.BatchSummary`), and the executor tier
    scores just those rows against each cached query's scalars instead
    of rescanning the database.  Deliberately a pure module-level
    function — no kernel instance, no stats bump, no lock — so it is
    safe to call while holding a cache leaf lock and gives identical
    results whether the engine scatters over threads or processes.
    """
    hypot = math.hypot
    out: list[tuple[int, float, float, float]] = []
    push = out.append
    if model_code == "jaccard":
        for x, y, m, length, oid in rows:
            d = hypot(x - qx, y - qy) / normaliser
            if d > 1.0:
                d = 1.0
            s = (m & qmask).bit_count()
            t = s / (length + qlen - s) if s else 0.0
            push((oid, ws * (1.0 - d) + wt * t, d, t))
    elif model_code == "dice":
        for x, y, m, length, oid in rows:
            d = hypot(x - qx, y - qy) / normaliser
            if d > 1.0:
                d = 1.0
            s = (m & qmask).bit_count()
            t = 2.0 * s / (length + qlen) if s else 0.0
            push((oid, ws * (1.0 - d) + wt * t, d, t))
    elif model_code == "overlap":
        for x, y, m, length, oid in rows:
            d = hypot(x - qx, y - qy) / normaliser
            if d > 1.0:
                d = 1.0
            s = (m & qmask).bit_count()
            t = s / min(length, qlen) if s else 0.0
            push((oid, ws * (1.0 - d) + wt * t, d, t))
    else:
        raise ValueError(f"unknown kernel model code: {model_code!r}")
    return out


class KernelStats:
    """Work counters of one kernel (exposed through ``GET /api/stats``).

    ``full_passes``/``score_passes`` count whole-database column scans;
    ``point_scores`` counts single-row evaluations (best-first leaf
    scoring); the remaining counters attribute batch entry points to
    their consumers.

    One kernel is shared by every executor worker thread, so updates go
    through :meth:`bump` under a lock — like the executor-tier cache
    counters served from the same stats endpoint.  The per-row hot
    paths never bump individually: :class:`KernelQuery` counts locally
    per search and flushes one bump at the end.
    """

    _FIELDS = (
        "full_passes",
        "score_passes",
        "point_scores",
        "count_better_calls",
        "rank_of_many_calls",
        "dual_views",
        "doc_contexts",
        "doc_rank_scans",
    )

    __slots__ = ("_lock",) + _FIELDS

    def __init__(self) -> None:
        self._lock = concurrency.ordered_lock("kernel.stats", concurrency.LEVEL_LEAF)
        for field in self._FIELDS:
            setattr(self, field, 0)

    def bump(self, field: str, amount: int = 1) -> None:
        """Atomically add ``amount`` to one counter."""
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)

    def reset(self) -> None:
        with self._lock:
            for field in self._FIELDS:
                setattr(self, field, 0)

    def to_dict(self) -> dict[str, int]:
        with self._lock:
            return {field: getattr(self, field) for field in self._FIELDS}


class DocContext:
    """One keyword set encoded against a kernel's vocabulary.

    The keyword-adaption module scores thousands of candidate keyword
    sets against the same database; encoding a candidate once and
    computing ``TSim`` per object by bit arithmetic replaces a
    ``frozenset`` intersection per (candidate, object) pair.
    """

    __slots__ = ("_kernel", "mask", "length", "_code")

    def __init__(self, kernel: "ScoringKernel", doc: AbstractSet[str]) -> None:
        self._kernel = kernel
        self.mask, _unknown = kernel.vocabulary.encode_query(doc)
        self.length = len(doc)
        self._code = kernel.model_code

    def tsim_row(self, row: int) -> float:
        """``TSim(o_row, doc)`` — identical floats to the set model."""
        kernel = self._kernel
        shared = (kernel._masks[row] & self.mask).bit_count()
        if shared == 0:
            return 0.0
        code = self._code
        doc_len = kernel._lens[row]
        if code == "jaccard":
            return shared / (doc_len + self.length - shared)
        if code == "dice":
            return 2.0 * shared / (doc_len + self.length)
        return shared / min(doc_len, self.length)

    def tsim_oid(self, oid: int) -> float:
        return self.tsim_row(self._kernel._row_of[oid])

    @hot_path
    def rank_scan(
        self,
        ws: float,
        wt: float,
        proximities: Sequence[float],
        target_oid: int,
    ) -> int:
        """Exact rank of ``target_oid`` under this doc, by full scan.

        Mirrors ``KeywordAdapter._rank_via_scan``: score every object as
        ``ws · proximity + wt · TSim`` and count the (score desc, oid
        asc) beaters of the target.
        """
        kernel = self._kernel
        kernel.stats.bump("doc_rank_scans")
        masks = kernel._masks
        lens = kernel._lens
        oids = kernel._oids
        qmask = self.mask
        qlen = self.length
        code = self._code
        target_row = kernel._row_of[target_oid]
        theta = ws * proximities[target_row] + wt * self.tsim_row(target_row)
        beaters = 0
        if code == "jaccard":
            for row in range(kernel._n):
                if row == target_row:
                    continue
                shared = (masks[row] & qmask).bit_count()
                tsim = (
                    shared / (lens[row] + qlen - shared) if shared else 0.0
                )
                score = ws * proximities[row] + wt * tsim
                if score > theta or (score == theta and oids[row] < target_oid):
                    beaters += 1
        elif code == "dice":
            for row in range(kernel._n):
                if row == target_row:
                    continue
                shared = (masks[row] & qmask).bit_count()
                tsim = 2.0 * shared / (lens[row] + qlen) if shared else 0.0
                score = ws * proximities[row] + wt * tsim
                if score > theta or (score == theta and oids[row] < target_oid):
                    beaters += 1
        else:
            for row in range(kernel._n):
                if row == target_row:
                    continue
                shared = (masks[row] & qmask).bit_count()
                tsim = shared / min(lens[row], qlen) if shared else 0.0
                score = ws * proximities[row] + wt * tsim
                if score > theta or (score == theta and oids[row] < target_oid):
                    beaters += 1
        return beaters + 1


class KernelQuery:
    """A query prepared for repeated single-row scoring.

    Best-first search scores one leaf entry at a time; preparing the
    query once (bitmask encoding, scalar unpacking) makes each
    ``score_oid`` a handful of arithmetic operations with no set
    machinery.  Scorings are counted in the (single-threaded) prepared
    query itself — :meth:`flush_stats` publishes them to the shared
    :class:`KernelStats` in one locked bump.
    """

    __slots__ = (
        "_kernel", "_qx", "_qy", "_qmask", "_qlen", "_ws", "_wt", "_code",
        "scored",
    )

    def __init__(self, kernel: "ScoringKernel", query: SpatialKeywordQuery) -> None:
        self._kernel = kernel
        self._qx = query.loc.x
        self._qy = query.loc.y
        self._qmask, _unknown = kernel.vocabulary.encode_query(query.doc)
        self._qlen = len(query.doc)
        self._ws = query.ws
        self._wt = query.wt
        self._code = kernel.model_code
        self.scored = 0

    def flush_stats(self) -> None:
        """Publish the local scoring count to the kernel's counters."""
        if self.scored:
            self._kernel.stats.bump("point_scores", self.scored)
            self.scored = 0

    def score_row(self, row: int) -> float:
        """``ST(o_row, q)`` — identical floats to ``Scorer.score``."""
        kernel = self._kernel
        self.scored += 1
        sdist = (
            math.hypot(kernel._xs[row] - self._qx, kernel._ys[row] - self._qy)
            / kernel._normaliser
        )
        sdist = min(sdist, 1.0)
        shared = (kernel._masks[row] & self._qmask).bit_count()
        if shared == 0:
            tsim = 0.0
        elif self._code == "jaccard":
            tsim = shared / (kernel._lens[row] + self._qlen - shared)
        elif self._code == "dice":
            tsim = 2.0 * shared / (kernel._lens[row] + self._qlen)
        else:
            tsim = shared / min(kernel._lens[row], self._qlen)
        return self._ws * (1.0 - sdist) + self._wt * tsim

    def score_oid(self, oid: int) -> float:
        return self.score_row(self._kernel._row_of[oid])


class DualView:
    """Database-aligned dual coordinates ``(a, b)`` under one query.

    The flat-array substrate of the preference-adjustment module: rank
    evaluations at candidate weights (``score = w·a + (1−w)·b``) run
    over two ``array('d')`` columns instead of a list of
    :class:`~repro.core.scoring.DualPoint` objects.
    """

    __slots__ = ("oids", "a", "b", "_row_of")

    def __init__(
        self,
        oids: Sequence[int],
        a: Sequence[float],
        b: Sequence[float],
        row_of: Mapping[int, int],
    ) -> None:
        self.oids = oids
        self.a = a
        self.b = b
        self._row_of = row_of

    def row_of(self, oid: int) -> int:
        return self._row_of[oid]

    def dual_point_of(self, oid: int) -> "DualPoint":
        """The one object's :class:`DualPoint` — no full materialisation.

        The preference module needs materialised points only for the
        missing objects; the sweep itself runs over the flat columns.
        """
        from repro.core.scoring import DualPoint

        row = self._row_of[oid]
        return DualPoint(oid=oid, a=self.a[row], b=self.b[row])

    def dual_points(self) -> "list[DualPoint]":
        """Materialise :class:`DualPoint` objects (live rows, row order)."""
        from repro.core.scoring import DualPoint

        return [
            point
            for point in map(DualPoint._make, zip(self.oids, self.a, self.b))
            if point.oid != _DEAD_OID
        ]

    def crossing_candidates(self, target_oid: int) -> "list[DualPoint]":
        """Objects whose score lines cross the target's inside ``(0, 1)``.

        The columnar form of the two dual-space range queries of
        Section 3.3 (see :class:`repro.index.dualspace.DualSpaceIndex`):
        lines cross exactly when the dual points sit in opposite open
        quadrants, ``(a_o − a_m)(b_o − b_m) < 0``, so one pass over the
        flat columns returns the identical candidate set without
        building a per-query R-tree over 2n floats first.
        """
        from repro.core.scoring import DualPoint

        row = self._row_of[target_oid]
        am = self.a[row]
        bm = self.b[row]
        oids = self.oids
        return [
            DualPoint(oid=oids[i], a=x, b=y)
            for i, (x, y) in enumerate(zip(self.a, self.b))
            if (x - am) * (y - bm) < 0.0
        ]

    @hot_path
    def ranks_at(
        self, ws: float, wt: float, target_oids: Sequence[int]
    ) -> dict[int, int]:
        """Exact float-semantics ranks of the targets at weights (ws, wt).

        Mirrors ``PreferenceAdjuster._ranks_at_weights``: scores are
        ``ws·a + wt·b`` with the (score desc, oid asc) tie-break.
        """
        a = self.a
        b = self.b
        oids = self.oids
        scores = [ws * x + wt * y for x, y in zip(a, b)]
        out: dict[int, int] = {}
        for target_oid in target_oids:
            target_row = self._row_of[target_oid]
            target_score = scores[target_row]
            beaten = 0
            for row, score in enumerate(scores):
                if score > target_score:
                    beaten += 1
                elif (
                    score == target_score
                    and row != target_row
                    and oids[row] < target_oid
                ):
                    beaten += 1
            out[target_oid] = beaten + 1
        return out

    @hot_path
    def strictly_above_at_zero(self, target_oid: int) -> int:
        """Objects strictly outranking the target as ``w → 0+``.

        Mirrors ``PreferenceAdjuster._strictly_above_at_zero``: order by
        ``b`` (TSim) with ``a`` as the tie-break.  The target's own row
        never satisfies either strict inequality, so no id check is
        needed.
        """
        row = self._row_of[target_oid]
        am = self.a[row]
        bm = self.b[row]
        above = 0
        for x, y in zip(self.a, self.b):
            if y > bm or (y == bm and x > am):
                above += 1
        return above

    @hot_path
    def permanent_ties_smaller(self, target_oid: int) -> int:
        """Objects with an identical score line and a smaller object id."""
        row = self._row_of[target_oid]
        am = self.a[row]
        bm = self.b[row]
        a = self.a
        b = self.b
        oids = self.oids
        return sum(
            1
            for i in range(len(oids))
            if a[i] == am and b[i] == bm and oids[i] < target_oid
        )


class ScoringKernel:
    """Columnar batch evaluator of Eqn. (1) over one database and model."""

    __slots__ = (
        "_database",
        "_model",
        "model_code",
        "_n",
        "_xs",
        "_ys",
        "_masks",
        "_lens",
        "_oids",
        "_objects",
        "_alive",
        "_dead_count",
        "_row_of",
        "_oids_ascending",
        "_max_seen_oid",
        "_normaliser",
        "compaction_threshold",
        "compactions",
        "stats",
    )

    def __init__(
        self,
        database: SpatialDatabase,
        text_model: TextSimilarityModel,
        *,
        compaction_threshold: float = DEFAULT_COMPACTION_THRESHOLD,
    ) -> None:
        code = _MODEL_CODES.get(type(text_model))
        if code is None:
            raise ValueError(
                f"{type(text_model).__name__} has no columnar kernel; "
                "use ScoringKernel.maybe_build for graceful fallback"
            )
        if not 0.0 <= compaction_threshold <= 1.0:
            raise ValueError("compaction_threshold must lie in [0, 1]")
        self._database = database
        self._model = text_model
        self.model_code = code
        objects = database.objects
        self._n = len(objects)
        self._xs = array("d", (obj.loc.x for obj in objects))
        self._ys = array("d", (obj.loc.y for obj in objects))
        self._masks: list[int] = list(database.doc_masks)
        self._lens = array("q", (len(obj.doc) for obj in objects))
        self._oids = array("q", (obj.oid for obj in objects))
        # Row-aligned object column (None at tombstones): the result
        # materialisation substrate — under mutation the database's
        # dense object tuple no longer lines up with physical rows.
        self._objects: list[SpatialObject | None] = list(objects)
        self._alive: list[bool] = [True] * self._n
        self._dead_count = 0
        self._row_of: dict[int, int] = {
            obj.oid: row for row, obj in enumerate(objects)
        }
        # With ascending oids (the common builder layout) rank ordering
        # can ride a stable reverse sort keyed by score alone.
        self._oids_ascending = all(
            self._oids[row] < self._oids[row + 1] for row in range(self._n - 1)
        )
        self._max_seen_oid = max(self._oids)
        self._normaliser = database.distance_normaliser
        self.compaction_threshold = compaction_threshold
        self.compactions = 0
        self.stats = KernelStats()

    @staticmethod
    def supports(text_model: TextSimilarityModel) -> bool:
        """Whether the model has an exact columnar formula (by exact type)."""
        return type(text_model) in _MODEL_CODES

    @classmethod
    def maybe_build(
        cls, database: SpatialDatabase, text_model: TextSimilarityModel
    ) -> "ScoringKernel | None":
        """Build a kernel, or None when the model needs the set path."""
        if not cls.supports(text_model):
            return None
        return cls(database, text_model)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def database(self) -> SpatialDatabase:
        return self._database

    @property
    def vocabulary(self) -> "Vocabulary":
        return self._database.vocabulary_index

    @property
    def oids(self) -> array:
        """Object ids in database (row) order."""
        return self._oids

    def row_of(self, oid: int) -> int:
        """Row index of an object id; raises ``KeyError`` when unknown."""
        return self._row_of[oid]

    @property
    def row_objects(self) -> Sequence["SpatialObject | None"]:
        """Row-aligned objects (None at tombstones) for materialisation."""
        return self._objects

    @property
    def live_count(self) -> int:
        """Number of live (non-tombstoned) rows."""
        return self._n - self._dead_count

    @property
    def has_tombstones(self) -> bool:
        return self._dead_count > 0

    def live_row_list(self) -> list[int]:
        """Physical rows of the live objects, in row order."""
        alive = self._alive
        return [row for row in range(self._n) if alive[row]]

    # ------------------------------------------------------------------
    # Incremental maintenance (repro.core.mutations)
    # ------------------------------------------------------------------
    def apply_mutations(
        self,
        change,
        *,
        force_compact: bool = False,
    ) -> None:
        """Tombstone removed rows, append new ones, maybe compact.

        ``change`` is an :class:`repro.core.mutations.AppliedBatch`
        (duck-typed: ``removed_oids`` + ``appended``).  Call *after* the
        owning database applied the same batch: the appended objects are
        encoded against its (already extended) vocabulary.
        ``force_compact`` compacts regardless of the threshold — the
        sharded tiers keep their kernels dense so shard row maps stay
        trivially aligned.
        """
        appended: Sequence[SpatialObject] = change.appended
        rows = self.encode_rows(appended, self.vocabulary)
        self.apply_raw(
            change.removed_oids,
            rows,
            objects=appended,
            force_compact=force_compact,
        )

    @staticmethod
    def encode_rows(
        objects: Sequence[SpatialObject], vocabulary: "Vocabulary"
    ) -> tuple[tuple[float, float, int, int, int], ...]:
        """Pre-encode objects as ``(x, y, mask, doc_len, oid)`` rows.

        The one definition of the column-delta wire format: the kernel's
        own :meth:`apply_mutations`, the mutation tier's
        :class:`~repro.core.mutations.BatchSummary` row payload and the
        process pool's delta broadcast all encode through here, so a row
        means the same thing on every side of a thread or process
        boundary.
        """
        encode = vocabulary.encode
        return tuple(
            (obj.loc.x, obj.loc.y, encode(obj.doc), len(obj.doc), obj.oid)
            for obj in objects
        )

    def apply_raw(
        self,
        removed_oids: Iterable[int],
        rows: Sequence[tuple[float, float, int, int, int]],
        *,
        objects: Sequence[SpatialObject] | None = None,
        force_compact: bool = False,
    ) -> None:
        """Apply a pre-encoded column delta: tombstone, append, compact.

        ``rows`` are ``(x, y, mask, doc_len, oid)`` tuples with masks in
        *this kernel's* bit space — exactly what
        :meth:`apply_mutations` encodes, and exactly what the process
        workers receive over the pipe (a worker holds no vocabulary, so
        the primary encodes).  ``objects`` optionally supplies the
        row-aligned :class:`SpatialObject` instances for the
        materialisation column; a worker passes nothing and keeps
        ``None`` placeholders (it only ever serves ``(score, oid)``
        candidates).  Running the identical cell writes on both sides
        of the process boundary is what keeps a worker's columns
        bit-for-bit equal to the primary's shard kernel.
        """
        for oid in removed_oids:
            row = self._row_of.pop(oid)
            self._xs[row] = _DEAD_COORD
            self._ys[row] = _DEAD_COORD
            self._masks[row] = 0
            self._lens[row] = 1
            self._oids[row] = _DEAD_OID
            self._objects[row] = None
            self._alive[row] = False
            self._dead_count += 1
        for index, (x, y, mask, doc_len, oid) in enumerate(rows):
            self._xs.append(x)
            self._ys.append(y)
            self._masks.append(mask)
            self._lens.append(doc_len)
            self._oids.append(oid)
            self._objects.append(None if objects is None else objects[index])
            self._alive.append(True)
            self._row_of[oid] = self._n
            self._n += 1
            # Incremental oid-order tracking: deletes preserve a
            # rising live sequence, appends keep it only past the
            # highest id ever seen (conservative after the max is
            # deleted — the decorated sort is always correct).
            if oid > self._max_seen_oid:
                self._max_seen_oid = oid
            else:
                self._oids_ascending = False
        if self._dead_count and (
            force_compact
            or self._dead_count > self.compaction_threshold * self._n
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstoned rows, renumbering the survivors in order."""
        alive = self._alive
        rows = [row for row in range(self._n) if alive[row]]
        self._xs = array("d", (self._xs[row] for row in rows))
        self._ys = array("d", (self._ys[row] for row in rows))
        self._masks = [self._masks[row] for row in rows]
        self._lens = array("q", (self._lens[row] for row in rows))
        self._oids = array("q", (self._oids[row] for row in rows))
        self._objects = [self._objects[row] for row in rows]
        self._n = len(rows)
        self._alive = [True] * self._n
        self._dead_count = 0
        self._row_of = {oid: row for row, oid in enumerate(self._oids)}
        # Compaction is the (rare) moment an exact recompute is cheap
        # relative to the work already done.
        self._oids_ascending = all(
            self._oids[row] < self._oids[row + 1] for row in range(self._n - 1)
        )
        self._max_seen_oid = max(self._oids)
        self.compactions += 1

    def mutation_info(self) -> dict[str, int | float]:
        """Column occupancy for ``GET /api/stats``' mutations section."""
        return {
            "rows": self._n,
            "live_rows": self.live_count,
            "tombstones": self._dead_count,
            "compactions": self.compactions,
            "compaction_threshold": self.compaction_threshold,
        }

    # ------------------------------------------------------------------
    # Column transport (repro.service.procpool)
    # ------------------------------------------------------------------
    def export_columns(self) -> tuple[dict, bytes]:
        """``(meta, blob)`` — the columns packed for shared memory.

        The blob lays the numeric columns out back to back (``xs``,
        ``ys`` as float64; ``lens``, ``oids`` as int64) followed by the
        doc bitmasks as fixed-width little-endian rows, so an attached
        process can :meth:`from_columns` the numeric columns as
        zero-copy ``memoryview`` casts.  Requires a compacted kernel:
        the scatter tiers keep shard kernels dense (``force_compact``),
        and exporting tombstones would ship rows the attaching side
        cannot re-tombstone by oid.
        """
        if self._dead_count:
            raise ValueError(
                "export_columns requires a compacted kernel "
                f"({self._dead_count} tombstoned row(s) present)"
            )
        mask_bits = 1
        for mask in self._masks:
            bits = mask.bit_length()
            if bits > mask_bits:
                mask_bits = bits
        mask_width = (mask_bits + 7) // 8
        parts = [
            self._xs.tobytes(),
            self._ys.tobytes(),
            self._lens.tobytes(),
            self._oids.tobytes(),
        ]
        for mask in self._masks:
            parts.append(mask.to_bytes(mask_width, "little"))
        meta = {
            "n": self._n,
            "model_code": self.model_code,
            "normaliser": self._normaliser,
            "mask_width": mask_width,
            "compaction_threshold": self.compaction_threshold,
        }
        return meta, b"".join(parts)

    @classmethod
    def from_columns(cls, meta: dict, buffer) -> "ScoringKernel":
        """Attach a kernel to columns exported by :meth:`export_columns`.

        The numeric columns are zero-copy ``memoryview`` casts into
        ``buffer`` (typically a ``multiprocessing.shared_memory``
        segment), so a forked worker pays nothing per row to come up;
        the bitmask column is decoded once into Python ints (the
        ``bit_count`` arithmetic needs them anyway).  The result has no
        database, vocabulary or objects — it serves the scalar scan and
        rank primitives plus :meth:`apply_raw` deltas, which is the
        whole worker contract.  Call :meth:`thaw_columns` before the
        first ``apply_raw``: appends cannot extend a fixed segment.
        """
        n = int(meta["n"])
        mask_width = int(meta["mask_width"])
        view = memoryview(buffer)
        kernel = object.__new__(cls)
        kernel._database = None
        kernel._model = None
        kernel.model_code = meta["model_code"]
        kernel._n = n
        offset = 0
        kernel._xs = view[offset : offset + 8 * n].cast("d")
        offset += 8 * n
        kernel._ys = view[offset : offset + 8 * n].cast("d")
        offset += 8 * n
        kernel._lens = view[offset : offset + 8 * n].cast("q")
        offset += 8 * n
        kernel._oids = view[offset : offset + 8 * n].cast("q")
        offset += 8 * n
        masks: list[int] = []
        for row in range(n):
            start = offset + row * mask_width
            masks.append(int.from_bytes(view[start : start + mask_width], "little"))
        kernel._masks = masks
        kernel._objects = [None] * n
        kernel._alive = [True] * n
        kernel._dead_count = 0
        kernel._row_of = {oid: row for row, oid in enumerate(kernel._oids)}
        kernel._oids_ascending = all(
            kernel._oids[row] < kernel._oids[row + 1] for row in range(n - 1)
        )
        kernel._max_seen_oid = max(kernel._oids, default=0)
        kernel._normaliser = meta["normaliser"]
        kernel.compaction_threshold = meta["compaction_threshold"]
        kernel.compactions = 0
        kernel.stats = KernelStats()
        return kernel

    def thaw_columns(self) -> bool:
        """Copy memoryview-backed columns into appendable local arrays.

        A :meth:`from_columns` kernel reads straight out of the shared
        segment until its first delta; mutation needs appendable
        columns, so the worker thaws (copies) once, after which the
        segment can be closed.  Returns whether anything was copied —
        ``False`` means the columns were already local arrays.
        """
        if not isinstance(self._xs, memoryview):
            return False
        self._xs = array("d", self._xs)
        self._ys = array("d", self._ys)
        self._lens = array("q", self._lens)
        self._oids = array("q", self._oids)
        return True

    # ------------------------------------------------------------------
    # Whole-database passes
    # ------------------------------------------------------------------
    def _query_scalars(
        self, query: SpatialKeywordQuery
    ) -> tuple[float, float, int, int, float, float]:
        qmask, _unknown = self.vocabulary.encode_query(query.doc)
        return (
            query.loc.x,
            query.loc.y,
            qmask,
            len(query.doc),
            query.ws,
            query.wt,
        )

    @hot_path
    def components_all(
        self, query: SpatialKeywordQuery
    ) -> tuple[list[float], list[float], list[float]]:
        """``(sdists, tsims, scores)`` columns in database order.

        Every float matches ``Scorer.breakdown`` exactly: same hypot,
        same division by the dataspace diagonal, same clamp at 1, same
        convex combination.  Outputs are plain lists — readers index
        them heavily and lists hand back the already-boxed floats.
        """
        self.stats.bump("full_passes")
        qx, qy, qmask, qlen, ws, wt = self._query_scalars(query)
        norm = self._normaliser
        hypot = math.hypot
        sdists: list[float] = []
        tsims: list[float] = []
        scores: list[float] = []
        push_sdist = sdists.append
        push_tsim = tsims.append
        push_score = scores.append
        code = self.model_code
        if code == "jaccard":
            for x, y, m, length in zip(self._xs, self._ys, self._masks, self._lens):
                d = hypot(x - qx, y - qy) / norm
                if d > 1.0:
                    d = 1.0
                s = (m & qmask).bit_count()
                t = s / (length + qlen - s) if s else 0.0
                push_sdist(d)
                push_tsim(t)
                push_score(ws * (1.0 - d) + wt * t)
        elif code == "dice":
            for x, y, m, length in zip(self._xs, self._ys, self._masks, self._lens):
                d = hypot(x - qx, y - qy) / norm
                if d > 1.0:
                    d = 1.0
                s = (m & qmask).bit_count()
                t = 2.0 * s / (length + qlen) if s else 0.0
                push_sdist(d)
                push_tsim(t)
                push_score(ws * (1.0 - d) + wt * t)
        else:
            for x, y, m, length in zip(self._xs, self._ys, self._masks, self._lens):
                d = hypot(x - qx, y - qy) / norm
                if d > 1.0:
                    d = 1.0
                s = (m & qmask).bit_count()
                t = s / min(length, qlen) if s else 0.0
                push_sdist(d)
                push_tsim(t)
                push_score(ws * (1.0 - d) + wt * t)
        return sdists, tsims, scores

    def _score_list(self, query: SpatialKeywordQuery) -> list[float]:
        """The score column alone (the rank primitives' shared pass)."""
        return self.scalar_scores(*self._query_scalars(query))

    @hot_path
    def scalar_scores(
        self,
        qx: float,
        qy: float,
        qmask: int,
        qlen: int,
        ws: float,
        wt: float,
    ) -> list[float]:
        """The score column from pre-extracted query scalars.

        The query-free core of :meth:`_score_list`: everything a scan
        needs is six scalars, so a worker *process* holding only the
        flat columns (no database, no vocabulary) runs the identical
        pass on scalars prepared by the primary — the parent encodes
        the query against this kernel's vocabulary and ships
        ``(qx, qy, qmask, qlen, ws, wt)`` over the pipe.  One
        implementation for both sides is what makes cross-process
        parity bit-for-bit rather than merely close.
        """
        self.stats.bump("score_passes")
        norm = self._normaliser
        hypot = math.hypot
        scores: list[float] = []
        push_score = scores.append
        code = self.model_code
        if code == "jaccard":
            for x, y, m, length in zip(self._xs, self._ys, self._masks, self._lens):
                d = hypot(x - qx, y - qy) / norm
                if d > 1.0:
                    d = 1.0
                s = (m & qmask).bit_count()
                t = s / (length + qlen - s) if s else 0.0
                push_score(ws * (1.0 - d) + wt * t)
        elif code == "dice":
            for x, y, m, length in zip(self._xs, self._ys, self._masks, self._lens):
                d = hypot(x - qx, y - qy) / norm
                if d > 1.0:
                    d = 1.0
                s = (m & qmask).bit_count()
                t = 2.0 * s / (length + qlen) if s else 0.0
                push_score(ws * (1.0 - d) + wt * t)
        else:
            for x, y, m, length in zip(self._xs, self._ys, self._masks, self._lens):
                d = hypot(x - qx, y - qy) / norm
                if d > 1.0:
                    d = 1.0
                s = (m & qmask).bit_count()
                t = s / min(length, qlen) if s else 0.0
                push_score(ws * (1.0 - d) + wt * t)
        return scores

    def score_all(self, query: SpatialKeywordQuery) -> array:
        """``ST(o, q)`` for every object, in database order."""
        return array("d", self._score_list(query))

    def scan_top_k(
        self,
        k: int,
        qx: float,
        qy: float,
        qmask: int,
        qlen: int,
        ws: float,
        wt: float,
    ) -> list[tuple[float, int]]:
        """The best ``k`` rows as ``(−score, oid)`` pairs, merge-ready.

        ``(−score, oid)`` ascending is exactly the oracle's
        ``(score desc, oid asc)`` order, so candidate lists from
        different shards merge with plain heap selection.  This is the
        one scan both scatter tiers run — the thread path through
        :meth:`ShardedEngine._scan_shard` and the process workers of
        :mod:`repro.service.procpool` — so their candidates are
        bit-identical by construction.
        """
        scores = self.scalar_scores(qx, qy, qmask, qlen, ws, wt)
        return nsmallest(k, zip(map(neg, scores), self._oids))

    def order_rows(self, scores: Sequence[float]) -> list[int]:
        """Rows in (score desc, oid asc) rank order for a score column.

        With ascending oids a stable reverse sort keyed by score alone
        realises the tie-break for free (equal scores keep row — hence
        oid — order); otherwise a decorated sort spells it out.
        Tombstoned rows are excluded — this is a materialising entry
        point, so dead rows must not leak into rankings.
        """
        if self._dead_count:
            rows: Sequence[int] = self.live_row_list()
        else:
            rows = range(self._n)
        if self._oids_ascending:
            return sorted(rows, key=scores.__getitem__, reverse=True)
        oids = self._oids
        decorated = sorted((-scores[row], oids[row], row) for row in rows)
        return [row for _, _, row in decorated]

    def proximities(self, query: SpatialKeywordQuery) -> list[float]:
        """``1 − SDist(o, q)`` per object — the keyword module's cache."""
        qx = query.loc.x
        qy = query.loc.y
        norm = self._normaliser
        hypot = math.hypot
        return [
            1.0 - min(hypot(x - qx, y - qy) / norm, 1.0)
            for x, y in zip(self._xs, self._ys)
        ]

    # ------------------------------------------------------------------
    # Dual-space view (preference adjustment substrate)
    # ------------------------------------------------------------------
    @hot_path
    def dual_view(self, query: SpatialKeywordQuery) -> DualView:
        """Flat ``(a, b) = (1 − SDist, TSim)`` columns under ``query``.

        A dedicated pass: the score column would be dead weight here (the
        sweep evaluates ``w·a + (1−w)·b`` at *candidate* weights), so
        this neither runs nor gets counted as a full component pass.
        """
        self.stats.bump("dual_views")
        qx, qy, qmask, qlen, ws, wt = self._query_scalars(query)
        del ws, wt  # dual coordinates are weight-free
        norm = self._normaliser
        hypot = math.hypot
        a: list[float] = []
        b: list[float] = []
        push_a = a.append
        push_b = b.append
        code = self.model_code
        if code == "jaccard":
            for x, y, m, length in zip(self._xs, self._ys, self._masks, self._lens):
                d = hypot(x - qx, y - qy) / norm
                if d > 1.0:
                    d = 1.0
                s = (m & qmask).bit_count()
                push_a(1.0 - d)
                push_b(s / (length + qlen - s) if s else 0.0)
        elif code == "dice":
            for x, y, m, length in zip(self._xs, self._ys, self._masks, self._lens):
                d = hypot(x - qx, y - qy) / norm
                if d > 1.0:
                    d = 1.0
                s = (m & qmask).bit_count()
                push_a(1.0 - d)
                push_b(2.0 * s / (length + qlen) if s else 0.0)
        else:
            for x, y, m, length in zip(self._xs, self._ys, self._masks, self._lens):
                d = hypot(x - qx, y - qy) / norm
                if d > 1.0:
                    d = 1.0
                s = (m & qmask).bit_count()
                push_a(1.0 - d)
                push_b(s / min(length, qlen) if s else 0.0)
        return DualView(self._oids, a, b, self._row_of)

    def dual_points_all(self, query: SpatialKeywordQuery) -> "list[DualPoint]":
        """Every object's :class:`DualPoint` — matches ``Scorer.dual_points``."""
        return self.dual_view(query).dual_points()

    # ------------------------------------------------------------------
    # Rank primitives
    # ------------------------------------------------------------------
    @hot_path
    def count_better(
        self, score: float, oid: int, query: SpatialKeywordQuery
    ) -> int:
        """Objects beating ``(score, oid)`` under (score desc, oid asc).

        ``oid``'s own row is excluded, so passing an object's true score
        yields ``rank − 1`` exactly as ``Scorer.rank_of`` counts it.
        """
        self.stats.bump("count_better_calls")
        scores = self._score_list(query)
        oids = self._oids
        target_row = self._row_of.get(oid, -1)
        better = 0
        for row, other_score in enumerate(scores):
            if row == target_row:
                continue
            if other_score > score or (
                other_score == score and oids[row] < oid
            ):
                better += 1
        return better

    @hot_path
    def rank_of_many(
        self, target_oids: Iterable[int], query: SpatialKeywordQuery
    ) -> dict[int, int]:
        """Exact rank of each target oid in one shared column pass."""
        self.stats.bump("rank_of_many_calls")
        scores = self._score_list(query)
        oids = self._oids
        out: dict[int, int] = {}
        for target_oid in target_oids:
            target_row = self._row_of[target_oid]
            target_score = scores[target_row]
            better = 0
            for row, other_score in enumerate(scores):
                if other_score > target_score:
                    better += 1
                elif (
                    other_score == target_score
                    and row != target_row
                    and oids[row] < target_oid
                ):
                    better += 1
            out[target_oid] = better + 1
        return out

    # ------------------------------------------------------------------
    # Prepared contexts
    # ------------------------------------------------------------------
    def prepare(self, query: SpatialKeywordQuery) -> KernelQuery:
        """Prepare a query for repeated single-object scoring."""
        return KernelQuery(self, query)

    def doc_context(self, doc: AbstractSet[str]) -> DocContext:
        """Encode a (candidate) keyword set for batch TSim evaluation."""
        self.stats.bump("doc_contexts")
        return DocContext(self, doc)
