"""Spatial keyword top-k query engines (Definition 1).

Section 3.3 of the paper: "To process a spatial keyword top-k query, we
maintain a priority queue Q that is initialized with the SetR-tree root
node.  In each iteration of query processing, we pop up the first
element in Q and report it as a result if it is an object; otherwise, we
unfold it and put its children into Q.  The process continues until k
objects are retrieved."

:class:`BestFirstTopK` implements exactly that loop against any index
exposing ``root`` / node structure and a ``score_upper_bound(node, q)``
method (the SetR-tree for Jaccard, the IR-tree for cosine).
:class:`BruteForceTopK` is the O(n log n) reference oracle.

Both engines produce the same deterministic total order — score
descending, then object id ascending — which the priority queue enforces
by expanding nodes *before* emitting equal-priority objects: an object
leaves the queue only when no unexpanded node could still contain a
better-or-tied-with-smaller-id competitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Protocol, runtime_checkable

from repro.core.objects import SpatialObject
from repro.core.query import QueryResult, SpatialKeywordQuery
from repro.core.scoring import Scorer
from repro.index.rtree import RTreeNode

__all__ = [
    "SpatioTextualIndex",
    "TopKEngine",
    "BruteForceTopK",
    "BestFirstTopK",
    "SearchStats",
]


@runtime_checkable
class SpatioTextualIndex(Protocol):
    """What an index must provide to drive best-first top-k search."""

    @property
    def root(self) -> RTreeNode[SpatialObject]: ...

    def score_upper_bound(
        self, node: RTreeNode[SpatialObject], query: SpatialKeywordQuery
    ) -> float: ...

    def __len__(self) -> int: ...


@runtime_checkable
class TopKEngine(Protocol):
    """Common engine interface used by the service layer and benchmarks."""

    def search(self, query: SpatialKeywordQuery) -> QueryResult: ...


@dataclass(slots=True)
class SearchStats:
    """Work counters of the most recent best-first search.

    ``nodes_expanded`` against ``len(index)`` is the pruning-power metric
    the E3/E8 benchmarks report.
    """

    nodes_expanded: int = 0
    objects_scored: int = 0
    heap_pushes: int = 0

    def reset(self) -> None:
        self.nodes_expanded = 0
        self.objects_scored = 0
        self.heap_pushes = 0


class BruteForceTopK:
    """Reference engine: score every object, sort, take k (Definition 1)."""

    def __init__(self, scorer: Scorer) -> None:
        self._scorer = scorer

    @property
    def scorer(self) -> Scorer:
        return self._scorer

    def search(self, query: SpatialKeywordQuery) -> QueryResult:
        return self._scorer.top_k(query)


class BestFirstTopK:
    """Priority-queue search over a spatio-textual index (Section 3.3).

    Heap entries are ordered by ``(-bound, kind, tie)`` where ``kind`` is
    0 for nodes and 1 for objects: at equal priority a node is expanded
    before an object is reported, guaranteeing the emitted object order
    equals the brute-force (score desc, oid asc) total order.
    """

    def __init__(self, index: SpatioTextualIndex, scorer: Scorer) -> None:
        self._index = index
        self._scorer = scorer
        self.stats = SearchStats()

    @property
    def index(self) -> SpatioTextualIndex:
        return self._index

    @property
    def scorer(self) -> Scorer:
        return self._scorer

    def search(self, query: SpatialKeywordQuery) -> QueryResult:
        self.stats.reset()
        root = self._index.root
        selected: list[SpatialObject] = []
        if root.rect is None:
            return self._scorer.result_from_objects(query, selected)

        # Leaf entries are scored one object at a time; a prepared
        # kernel query turns each into bitmask arithmetic (identical
        # floats, see repro.core.kernel) instead of frozenset ops.  The
        # kernel columns describe the scorer's database, so an index
        # entry is only scored columnar when it *is* that database's
        # object (identity, not just a shared oid).
        kernel = self._scorer.kernel
        prepared = kernel.prepare(query) if kernel is not None else None
        database = self._scorer.database

        counter = 0
        heap: list[tuple[float, int, int, object]] = []
        heappush(
            heap,
            (-self._index.score_upper_bound(root, query), 0, counter, root),
        )
        self.stats.heap_pushes += 1

        while heap and len(selected) < query.k:
            _, kind, _, payload = heappop(heap)
            if kind == 1:
                selected.append(payload)  # type: ignore[arg-type]
                continue
            node: RTreeNode[SpatialObject] = payload  # type: ignore[assignment]
            self.stats.nodes_expanded += 1
            if node.is_leaf:
                for entry in node.entries:
                    obj = entry.item
                    score = (
                        prepared.score_oid(obj.oid)
                        if prepared is not None and obj in database
                        else self._scorer.score(obj, query)
                    )
                    self.stats.objects_scored += 1
                    heappush(heap, (-score, 1, obj.oid, obj))
                    self.stats.heap_pushes += 1
            else:
                for child in node.children:
                    bound = self._index.score_upper_bound(child, query)
                    counter += 1
                    heappush(heap, (-bound, 0, counter, child))
                    self.stats.heap_pushes += 1

        if prepared is not None:
            prepared.flush_stats()
        return self._scorer.result_from_objects(query, selected)
