"""The why-not question answering engine (Sections 2.2 and 3.3).

Modules:

* :mod:`repro.whynot.penalty` — Eqns. (3) and (4).
* :mod:`repro.whynot.preference` — Definition 2 via the weight-plane
  crossover sweep and rank update theorem.
* :mod:`repro.whynot.keyword` — Definition 3 via KcR-tree bound-and-prune.
* :mod:`repro.whynot.explanation` — the explanation generator.
* :mod:`repro.whynot.baselines` — sampling / exhaustive comparison points.
* :mod:`repro.whynot.engine` — the combined engine facade.
"""

from repro.whynot.baselines import SamplingPreferenceAdjuster, exhaustive_keyword_adapter
from repro.whynot.combined import CombinedRefinement, CombinedRefiner
from repro.whynot.engine import WhyNotAnswer, WhyNotEngine
from repro.whynot.errors import NotMissingError, UnknownObjectError, WhyNotError
from repro.whynot.explanation import (
    ExplanationGenerator,
    MissingReason,
    ObjectExplanation,
    WhyNotExplanation,
)
from repro.whynot.keyword import AdaptionStats, KeywordAdapter, KeywordRefinement
from repro.whynot.penalty import (
    KeywordPenalty,
    PreferencePenalty,
    keyword_edit_distance,
    missing_doc_union,
)
from repro.whynot.preference import PreferenceAdjuster, PreferenceRefinement

__all__ = [
    "SamplingPreferenceAdjuster",
    "exhaustive_keyword_adapter",
    "CombinedRefinement",
    "CombinedRefiner",
    "WhyNotAnswer",
    "WhyNotEngine",
    "NotMissingError",
    "UnknownObjectError",
    "WhyNotError",
    "ExplanationGenerator",
    "MissingReason",
    "ObjectExplanation",
    "WhyNotExplanation",
    "AdaptionStats",
    "KeywordAdapter",
    "KeywordRefinement",
    "KeywordPenalty",
    "PreferencePenalty",
    "keyword_edit_distance",
    "missing_doc_union",
    "PreferenceAdjuster",
    "PreferenceRefinement",
]
