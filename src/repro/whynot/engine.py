"""The why-not question answering engine (Fig. 1, right-hand engine).

Combines the three modules of Section 3.3 — the explanation generator,
the preference-adjusted module and the keyword-adapted module — behind
one facade that resolves missing-object references, validates the
question and dispatches to the chosen refinement model.  "Users can
apply the two refinement functions simultaneously to find better
solutions" (Section 3.2): :meth:`WhyNotEngine.refine_both` runs both
models and reports them side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.query import QueryResult, SpatialKeywordQuery
from repro.core.scoring import Scorer
from repro.index.kcrtree import KcRTree
from repro.index.setrtree import SetRTree
from repro.whynot.combined import CombinedRefinement, CombinedRefiner
from repro.whynot.errors import UnknownObjectError
from repro.whynot.explanation import ExplanationGenerator, WhyNotExplanation
from repro.whynot.keyword import KeywordAdapter, KeywordRefinement
from repro.whynot.preference import PreferenceAdjuster, PreferenceRefinement

__all__ = ["WhyNotAnswer", "WhyNotEngine"]


@dataclass(frozen=True, slots=True)
class WhyNotAnswer:
    """A combined answer: explanation plus the available refinements."""

    explanation: WhyNotExplanation
    preference: PreferenceRefinement | None = None
    keyword: KeywordRefinement | None = None

    @property
    def best_model(self) -> str | None:
        """Which executed model produced the lower penalty.

        Tie rule (explicit and deterministic): when both models were
        executed and their penalties are *exactly* equal, preference
        adjustment wins.  It is the less intrusive refinement — it keeps
        the user's keywords verbatim and only re-weights the ranking
        components, whereas keyword adaption rewrites the query text —
        so at equal cost the answer recommends the query closest to what
        the user originally asked.  With only one model executed that
        model wins by default; with neither, there is no winner (None).
        """
        if self.preference is None and self.keyword is None:
            return None
        if self.keyword is None:
            return "preference adjustment"
        if self.preference is None:
            return "keyword adaption"
        if self.keyword.penalty < self.preference.penalty:
            return "keyword adaption"
        # Strictly lower penalty — or the documented tie rule above.
        return "preference adjustment"


class WhyNotEngine:
    """Server-side why-not engine over one database and text model."""

    def __init__(
        self,
        scorer: Scorer,
        *,
        set_rtree: SetRTree | None,
        kcr_tree: KcRTree,
        use_dual_index: bool = True,
        use_kcr_bounds: bool = True,
        max_edit_count: int | None = None,
        candidate_budget: int | None = None,
    ) -> None:
        self._scorer = scorer
        self._preference = PreferenceAdjuster(
            scorer, use_dual_index=use_dual_index
        )
        self._explainer = ExplanationGenerator(
            scorer, set_rtree, preference_adjuster=self._preference
        )
        self._keyword = KeywordAdapter(
            scorer,
            kcr_tree,
            use_bounds=use_kcr_bounds,
            max_edit_count=max_edit_count,
            candidate_budget=candidate_budget,
        )
        self._combined = CombinedRefiner(scorer, self._preference, self._keyword)

    @property
    def database(self) -> SpatialDatabase:
        return self._scorer.database

    @property
    def scorer(self) -> Scorer:
        return self._scorer

    @property
    def preference_adjuster(self):
        """The preference adjuster (executor-tier answer maintenance
        recomputes viable weight intervals through it)."""
        return self._preference

    # ------------------------------------------------------------------
    # Missing-object resolution
    # ------------------------------------------------------------------
    def resolve_missing(
        self, references: Sequence[int | str | SpatialObject]
    ) -> list[SpatialObject]:
        """Resolve ids/names/objects to database objects (``M ⊂ D``).

        Duplicates collapse; unknown references raise
        :class:`UnknownObjectError`.
        """
        resolved: list[SpatialObject] = []
        seen: set[int] = set()
        for reference in references:
            try:
                obj = self._scorer.database.resolve(reference)
            except KeyError:
                raise UnknownObjectError(reference) from None
            if obj.oid not in seen:
                seen.add(obj.oid)
                resolved.append(obj)
        return resolved

    # ------------------------------------------------------------------
    # The three modules
    # ------------------------------------------------------------------
    def explain(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[int | str | SpatialObject],
        *,
        initial_result: QueryResult | None = None,
    ) -> WhyNotExplanation:
        """Run the explanation generator for the missing set.

        ``initial_result`` — the query's already-computed top-k result
        (the session cache or the executor tier holds one) — is used as
        the explanation's starting point; without it the generator
        re-derives the result from scratch.
        """
        return self._explainer.explain(
            query, self.resolve_missing(missing), result=initial_result
        )

    def refine_preference(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[int | str | SpatialObject],
        *,
        lam: float = 0.5,
    ) -> PreferenceRefinement:
        """Run the preference-adjusted refinement model (Definition 2)."""
        return self._preference.refine(
            query, self.resolve_missing(missing), lam=lam
        )

    def refine_keywords(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[int | str | SpatialObject],
        *,
        lam: float = 0.5,
    ) -> KeywordRefinement:
        """Run the keyword-adapted refinement model (Definition 3)."""
        return self._keyword.refine(
            query, self.resolve_missing(missing), lam=lam
        )

    def refine_combined(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[int | str | SpatialObject],
        *,
        lam: float = 0.5,
    ) -> CombinedRefinement:
        """Apply both refinement functions together (Section 3.2)."""
        return self._combined.refine(query, self.resolve_missing(missing), lam=lam)

    def refine_both(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[int | str | SpatialObject],
        *,
        lam: float = 0.5,
        initial_result: QueryResult | None = None,
    ) -> WhyNotAnswer:
        """Explanation plus both refinement models side by side.

        ``initial_result`` (the cached top-k result for ``query``, when
        the caller holds one) spares the explanation generator from
        re-deriving it; the refiners rank in dual space and need no
        materialised result either way.
        """
        resolved = self.resolve_missing(missing)
        explanation = self._explainer.explain(
            query, resolved, result=initial_result
        )
        preference = self._preference.refine(query, resolved, lam=lam)
        keyword = self._keyword.refine(query, resolved, lam=lam)
        return WhyNotAnswer(
            explanation=explanation, preference=preference, keyword=keyword
        )
