"""Preference-adjusted why-not refinement (Definition 2, Eqn. 3).

Section 3.3 of the paper: "The basic idea is to transform each object
into a segment in a two-dimensional weight plane.  As shown in [5], the
best preference weighting vector must start from the origin and point to
the points where the missing objects' segments intersect with other
objects' segments.  We use two range queries to find the segments that
intersect with the missing objects' segments and compute all the
intersection points.  Then, with a rank update theorem [5] and the
rankings of the missing objects under the initial weighting vector, we
traverse all the intersection points and compute the lowest ranking of
the missing objects and the penalty of the corresponding refined query.
Finally, the module returns the weighting vector pointing to the
intersection with the minimum penalty."

Implementation outline (DESIGN.md §3.3):

1. Map every object to its dual point ``(a, b) = (1−SDist, TSim)``;
   its score is the line ``f(w) = w·a + (1−w)·b`` over ``w = ws``.
2. For each missing object ``m``, retrieve the objects whose lines cross
   ``m``'s inside ``(0, 1)`` with the two quadrant range queries of
   :class:`repro.index.dualspace.DualSpaceIndex` and compute the
   crossover weights.
3. Sweep all candidate weights in ascending order, maintaining each
   missing object's rank incrementally: passing the crossover with ``o``
   moves ``m``'s rank by ±1 according to which line rises faster — the
   rank update theorem.
4. Evaluate Eqn. (3) at every candidate (the initial weight — a pure
   k-enlargement — is always a candidate) and return the minimum.

Exactness note: ranks during the sweep follow exact real arithmetic on
the crossover structure; the engine then re-verifies the best candidates
against floating-point scores (the semantics of the top-k engine) so the
returned refined query is guaranteed to revive every missing object.
Each crossover also contributes a *past-the-crossing* candidate: the
first floating-point weight on the far side of the crossover at which
the float score comparison between the two objects actually flips.  The
flip happens a few ulps away from the real crossover (rounding), and
that float boundary — located by an exponential march plus bisection in
:meth:`PreferenceAdjuster._past_crossing_candidate` — is where the
infimum of the penalty lives when the crossover tie goes against the
missing object.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.objects import SpatialObject
from repro.core.query import SpatialKeywordQuery, Weights
from repro.core.scoring import DualPoint, Scorer
from repro.index.dualspace import DualSpaceIndex
from repro.whynot.errors import NotMissingError
from repro.whynot.penalty import PreferencePenalty

__all__ = ["PreferenceRefinement", "PreferenceAdjuster"]


@dataclass(frozen=True, slots=True)
class PreferenceRefinement:
    """The answer to a preference-adjusted why-not question.

    ``refined_query`` differs from the initial query only in its weights
    and (possibly) its ``k`` (Definition 2: ``q' = (loc, doc, k', ~w')``).
    """

    refined_query: SpatialKeywordQuery
    penalty: float
    delta_k: int
    delta_w: float
    refined_worst_rank: int
    initial_worst_rank: int
    lam: float
    #: Diagnostics: number of crossover points found / candidates scored.
    crossovers: int = 0
    candidates_evaluated: int = 0
    method: str = "weight-sweep"

    @property
    def k_only(self) -> bool:
        """True when the refinement keeps the weights and only enlarges k."""
        return self.delta_w == 0.0

    def describe(self) -> str:
        w = self.refined_query.weights
        return (
            f"refined weights=({w.ws:.4f}, {w.wt:.4f}), k={self.refined_query.k} "
            f"(Δk={self.delta_k}, Δw={self.delta_w:.4f}), penalty={self.penalty:.4f}"
        )


@dataclass(slots=True)
class _SweepState:
    """Per-missing-object sweep bookkeeping."""

    dual: DualPoint
    #: Events: (crossover weight, other's oid, direction); direction +1
    #: means the other object rises above m past the crossover.
    events: list[tuple[float, int, int]]
    #: Objects strictly above m on the current open interval.
    above: int
    #: Objects identical to m's line with a smaller oid (permanent ties).
    permanent_tie_smaller: int
    cursor: int = 0


class PreferenceAdjuster:
    """The preference-adjustment module of YASK's why-not engine."""

    def __init__(
        self,
        scorer: Scorer,
        *,
        use_dual_index: bool = True,
        verification_window: int = 16,
    ) -> None:
        """
        Parameters
        ----------
        scorer:
            Shared Eqn. (1) evaluator (fixes database and text model).
        use_dual_index:
            When True (default) the crossing objects are found with the
            paper's two R-tree range queries in dual space; when False a
            linear scan is used instead (the E8 ablation).
        verification_window:
            How many of the best sweep candidates are re-checked against
            floating-point ranks before one is returned.
        """
        if verification_window < 1:
            raise ValueError("verification_window must be at least 1")
        self._scorer = scorer
        self._use_dual_index = use_dual_index
        self._verification_window = verification_window

    @property
    def scorer(self) -> Scorer:
        return self._scorer

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def refine(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[SpatialObject],
        *,
        lam: float = 0.5,
    ) -> PreferenceRefinement:
        """Answer Definition 2 for missing set ``missing`` under ``λ``."""
        if not missing:
            raise ValueError("the missing object set M must not be empty")
        # The kernel's dual view carries (a, b) as flat columns; rank
        # evaluations during the sweep then run over arrays instead of
        # DualPoint attribute loops (identical floats either way).
        kernel = self._scorer.kernel
        view = kernel.dual_view(query) if kernel is not None else None
        if view is not None and self._use_dual_index:
            # The sweep runs over the view's flat columns; only the
            # missing objects need materialised dual points — skipping
            # the n-point list (and its oid dict) is a measurable win
            # on the cold why-not path.
            duals: list[DualPoint] = []
            missing_duals = [view.dual_point_of(obj.oid) for obj in missing]
        else:
            duals = (
                view.dual_points()
                if view is not None
                else self._scorer.dual_points(query)
            )
            by_oid: dict[int, DualPoint] = {dual.oid: dual for dual in duals}
            missing_duals = [by_oid[obj.oid] for obj in missing]

        initial_ranks = self._ranks(query.weights, missing_duals, duals, view)
        initial_worst = max(initial_ranks.values())
        if initial_worst <= query.k:
            already = [
                oid for oid, rank in initial_ranks.items() if rank <= query.k
            ]
            raise NotMissingError(already)

        penalty = PreferencePenalty(query, initial_worst, lam)

        # Step 2: crossover events via the two dual-space range queries —
        # served, with a kernel, by the equivalent columnar quadrant scan
        # (same candidate set, no per-query R-tree over the dual points).
        # ``use_dual_index=False`` remains the E8 ablation: a plain
        # linear scan over the materialised dual points on either path.
        dual_index = (
            DualSpaceIndex(duals)
            if self._use_dual_index and view is None
            else None
        )
        states: list[_SweepState] = []
        candidate_ws: set[float] = {query.ws}
        total_crossovers = 0
        for m_dual in missing_duals:
            if not self._use_dual_index:
                crossing = DualSpaceIndex.crossing_candidates_linear(duals, m_dual)
            elif view is not None:
                crossing = view.crossing_candidates(m_dual.oid)
            else:
                crossing = dual_index.crossing_candidates(m_dual)
            events: list[tuple[float, int, int]] = []
            for other in crossing:
                w_star = m_dual.crossover_with(other)
                if w_star is None or not self._valid_weight(w_star):
                    continue
                direction = 1 if other.slope > m_dual.slope else -1
                events.append((w_star, other.oid, direction))
                total_crossovers += 1
                candidate_ws.add(w_star)
                neighbour = self._past_crossing_candidate(
                    m_dual, other, w_star, query.ws
                )
                if neighbour is not None:
                    candidate_ws.add(neighbour)
            events.sort()
            states.append(
                _SweepState(
                    dual=m_dual,
                    events=events,
                    above=(
                        view.strictly_above_at_zero(m_dual.oid)
                        if view is not None
                        else self._strictly_above_at_zero(m_dual, duals)
                    ),
                    permanent_tie_smaller=(
                        view.permanent_ties_smaller(m_dual.oid)
                        if view is not None
                        else self._permanent_ties_smaller(m_dual, duals)
                    ),
                )
            )

        # Steps 3-4: ascending sweep with the rank-update theorem.
        # ``value_at`` evaluates Eqn. (3) without allocating a Weights
        # per candidate — identical floats to the verification's
        # ``penalty(worst, Weights.from_spatial(w))``.
        ordered_ws = sorted(candidate_ws)
        scored: list[tuple[float, float, int]] = []  # (penalty, w, worst rank)
        for w in ordered_ws:
            worst = 0
            for state in states:
                rank = self._advance_and_rank(state, w)
                if rank > worst:
                    worst = rank
            scored.append((penalty.value_at(worst, w), w, worst))

        # Floating-point verification of the best candidates.
        scored.sort(key=lambda item: (item[0], abs(item[1] - query.ws), item[1]))
        window = scored[: self._verification_window]
        best: tuple[float, float, int] | None = None
        for _, w, _ in window:
            weights = (
                query.weights if w == query.ws else Weights.from_spatial(w)
            )
            ranks = self._ranks(weights, missing_duals, duals, view)
            worst = max(ranks.values())
            pen = penalty(worst, weights)
            key = (pen, abs(w - query.ws), w)
            if best is None or key < (best[0], abs(best[1] - query.ws), best[1]):
                best = (pen, w, worst)
        assert best is not None  # the initial weight is always a candidate
        best_penalty, best_w, best_worst = best

        refined_weights = (
            query.weights if best_w == query.ws else Weights.from_spatial(best_w)
        )
        refined_k = penalty.refined_k(best_worst)
        refined_query = query.with_weights(refined_weights).with_k(refined_k)
        return PreferenceRefinement(
            refined_query=refined_query,
            penalty=best_penalty,
            delta_k=penalty.delta_k(best_worst),
            delta_w=query.weights.distance_to(refined_weights),
            refined_worst_rank=best_worst,
            initial_worst_rank=initial_worst,
            lam=lam,
            crossovers=total_crossovers,
            candidates_evaluated=len(ordered_ws),
            # The sweep strategy, not the retrieval substrate: the
            # columnar quadrant scan serves the same two range queries.
            method="weight-sweep" if self._use_dual_index else "weight-sweep-linear",
        )

    # ------------------------------------------------------------------
    # Weight-interval analysis (explanation-panel companion)
    # ------------------------------------------------------------------
    def viable_weight_intervals(
        self,
        query: SpatialKeywordQuery,
        missing_obj: SpatialObject,
        *,
        target_k: int | None = None,
    ) -> list[tuple[float, float]]:
        """Spatial-weight intervals where ``missing_obj`` enters the top-k.

        Returns the maximal sub-intervals of ``(0, 1)`` on which the
        object's rank (under the initial location/keywords) is at most
        ``target_k`` (default: the query's own ``k``) — the "how would I
        have to weigh distance vs keywords" view the explanation panel
        can draw.  An empty list means no preference alone revives the
        object: only enlarging ``k`` (or adapting keywords) can.

        Interval endpoints are the crossover weights; ranks on the open
        interval between two consecutive crossovers are constant.
        Endpoints are resolved with the engine's tie-break semantics at
        the crossover itself, except that an interval whose closing
        crossover tie goes against the object still reports that
        crossover as its (single-point over-inclusive) endpoint —
        callers probing the intervals should sample their interiors.
        """
        k = target_k if target_k is not None else query.k
        kernel = self._scorer.kernel
        view = kernel.dual_view(query) if kernel is not None else None
        if view is not None and self._use_dual_index:
            duals = []
            m_dual = view.dual_point_of(missing_obj.oid)
        else:
            duals = (
                view.dual_points()
                if view is not None
                else self._scorer.dual_points(query)
            )
            by_oid = {dual.oid: dual for dual in duals}
            m_dual = by_oid[missing_obj.oid]

        if not self._use_dual_index:
            crossing = DualSpaceIndex.crossing_candidates_linear(duals, m_dual)
        elif view is not None:
            crossing = view.crossing_candidates(m_dual.oid)
        else:
            crossing = DualSpaceIndex(duals).crossing_candidates(m_dual)
        events: list[tuple[float, int, int]] = []
        for other in crossing:
            w_star = m_dual.crossover_with(other)
            if w_star is None or not self._valid_weight(w_star):
                continue
            direction = 1 if other.slope > m_dual.slope else -1
            events.append((w_star, other.oid, direction))
        events.sort()

        state = _SweepState(
            dual=m_dual,
            events=events,
            above=(
                view.strictly_above_at_zero(m_dual.oid)
                if view is not None
                else self._strictly_above_at_zero(m_dual, duals)
            ),
            permanent_tie_smaller=(
                view.permanent_ties_smaller(m_dual.oid)
                if view is not None
                else self._permanent_ties_smaller(m_dual, duals)
            ),
        )
        # Evaluate the rank on every open interval between consecutive
        # crossovers (probed at the interval's left-open representative)
        # and at every crossover point, then merge viable stretches.
        boundaries = [0.0] + [event[0] for event in events] + [1.0]
        viable: list[tuple[float, float]] = []
        current_start: float | None = None

        def extend(lo: float, hi: float) -> None:
            nonlocal current_start
            if current_start is None:
                current_start = lo
            # Merged on the fly: contiguous viable pieces share endpoints.
            del hi

        def close(at: float) -> None:
            nonlocal current_start
            if current_start is not None:
                viable.append((current_start, at))
                current_start = None

        previous = 0.0
        for index, (w_event, _, _) in enumerate(events):
            # Open interval (previous, w_event): rank is the state's rank
            # just before the event; probe exactly at the event weight
            # minus nothing — _advance_and_rank at w_event applies events
            # strictly before it, which *is* the open-interval rank, then
            # handles the event ties for the point itself.
            interval_rank_probe = self._advance_and_rank(state, w_event)
            # interval_rank_probe is the rank AT w_event (ties included);
            # reconstruct the open-interval rank from the pre-event state:
            open_rank = 1 + state.above + state.permanent_tie_smaller
            if open_rank <= k:
                extend(previous, w_event)
            else:
                close(previous)
            if interval_rank_probe <= k:
                extend(w_event, w_event)
            else:
                close(w_event)
            # Consume the event(s) at this weight before moving on.
            while state.cursor < len(events) and events[state.cursor][0] == w_event:
                state.above += events[state.cursor][2]
                state.cursor += 1
            previous = w_event
        final_rank = 1 + state.above + state.permanent_tie_smaller
        if final_rank <= k:
            extend(previous, 1.0)
            close(1.0)
        else:
            close(previous)
        return viable

    # ------------------------------------------------------------------
    # Sweep internals
    # ------------------------------------------------------------------
    @staticmethod
    def _valid_weight(w: float) -> bool:
        """True when ``Weights.from_spatial(w)`` yields interior weights.

        Besides ``0 < w < 1`` this requires ``1 − w`` not to round to 0
        or 1 in floating point, which the :class:`Weights` validator
        would reject.
        """
        return 0.0 < w < 1.0 and 0.0 < 1.0 - w < 1.0

    @staticmethod
    def _beats(other: DualPoint, m_dual: DualPoint, w: float) -> bool:
        """Float-semantics comparison at spatial weight ``w``.

        Must mirror :meth:`_ranks_at_weights` exactly: scores are
        ``w·a + (1−w)·b`` (the values ``Weights.from_spatial(w)`` stores)
        with the (score desc, oid asc) tie-break.
        """
        other_score = w * other.a + (1.0 - w) * other.b
        m_score = w * m_dual.a + (1.0 - w) * m_dual.b
        if other_score != m_score:  # yasklint: disable=YASK103 -- dual-space comparator mirrors the kernel operation-for-operation; equality means a true permanent tie
            return other_score > m_score
        return other.oid < m_dual.oid

    def _past_crossing_candidate(
        self,
        m_dual: DualPoint,
        other: DualPoint,
        w_star: float,
        initial_ws: float,
    ) -> float | None:
        """First float weight past the crossing, on the side away from ``ws``.

        In real arithmetic the pair's relative order flips exactly at
        ``w_star``; in floats the comparison flips a few ulps away.  The
        interval on the far side of the crossing has its penalty infimum
        at this float boundary, so it is located exactly: march away
        from the crossing in exponentially growing steps until the float
        comparison shows the far-side state, then bisect back to the
        first float weight exhibiting it.
        """
        going_up = w_star >= initial_ws
        # Past the crossing (in sweep direction), the faster-rising line
        # is on top.
        other_beats_expected = (
            other.slope > m_dual.slope if going_up else other.slope < m_dual.slope
        )

        def state_reached(w: float) -> bool:
            return self._beats(other, m_dual, w) == other_beats_expected

        step = math.ulp(w_star) or math.ulp(1.0)
        probe: float | None = None
        for _ in range(128):
            candidate = w_star + step if going_up else w_star - step
            if not self._valid_weight(candidate):
                return None
            if state_reached(candidate):
                probe = candidate
                break
            step *= 2.0
        if probe is None:
            return None
        # Bisect [w_star, probe] for the earliest float in the far-side
        # state (probe is in-state, w_star side is not necessarily).
        low, high = w_star, probe
        while True:
            mid = low + (high - low) / 2.0
            if mid == low or mid == high:
                break
            if state_reached(mid):
                high = mid
            else:
                low = mid
        return high if self._valid_weight(high) else None

    @staticmethod
    def _strictly_above_at_zero(
        m_dual: DualPoint, duals: Sequence[DualPoint]
    ) -> int:
        """Objects strictly outranking ``m`` as ``w → 0+``.

        At the textual end of the weight range order is decided by ``b``
        (TSim), with the line slope — equivalently ``a`` — as the
        tie-break among lines meeting at ``w = 0``.
        """
        above = 0
        for other in duals:
            if other.oid == m_dual.oid:
                continue
            if other.b > m_dual.b or (
                other.b == m_dual.b and other.a > m_dual.a
            ):
                above += 1
        return above

    @staticmethod
    def _permanent_ties_smaller(
        m_dual: DualPoint, duals: Sequence[DualPoint]
    ) -> int:
        """Objects with an identical score line and a smaller object id.

        Such objects tie with ``m`` at every weight and beat it under the
        deterministic (score desc, oid asc) order.
        """
        return sum(
            1
            for other in duals
            if other.oid != m_dual.oid
            and other.a == m_dual.a
            and other.b == m_dual.b
            and other.oid < m_dual.oid
        )

    @staticmethod
    def _advance_and_rank(state: _SweepState, w: float) -> int:
        """Rank of the state's missing object exactly at weight ``w``.

        Applies the rank update theorem for every crossover strictly
        before ``w``; crossovers exactly at ``w`` are ties resolved by
        object id.  Must be called with non-decreasing ``w``.
        """
        events = state.events
        while state.cursor < len(events) and events[state.cursor][0] < w:
            _, _, direction = events[state.cursor]
            state.above += direction
            state.cursor += 1
        # Objects crossing exactly at w are tied with m here.
        tied_smaller = 0
        tied_from_above = 0
        probe = state.cursor
        while probe < len(events) and events[probe][0] == w:
            _, other_oid, direction = events[probe]
            if direction < 0:
                # Was above on the previous interval, tied at w.
                tied_from_above += 1
            if other_oid < state.dual.oid:
                tied_smaller += 1
            probe += 1
        strictly_above = state.above - tied_from_above
        return 1 + strictly_above + tied_smaller + state.permanent_tie_smaller

    # ------------------------------------------------------------------
    # Floating-point rank oracle (shared with the sampling baseline)
    # ------------------------------------------------------------------
    def _ranks(
        self,
        weights: Weights,
        missing_duals: Sequence[DualPoint],
        duals: Sequence[DualPoint],
        view: "object | None",
    ) -> Mapping[int, int]:
        """Exact missing-object ranks, over the kernel's dual columns
        when available (a :class:`repro.core.kernel.DualView`) and the
        DualPoint list otherwise — identical floats either way."""
        if view is not None:
            return view.ranks_at(
                weights.ws, weights.wt, [m.oid for m in missing_duals]
            )
        return self._ranks_at_weights(weights, missing_duals, duals)

    @staticmethod
    def _ranks_at_weights(
        weights: Weights,
        missing_duals: Sequence[DualPoint],
        duals: Sequence[DualPoint],
    ) -> Mapping[int, int]:
        """Exact ranks of the missing objects under ``weights`` (floats)."""
        targets = [
            (m.oid, weights.ws * m.a + weights.wt * m.b) for m in missing_duals
        ]
        beaten = {oid: 0 for oid, _ in targets}
        for other in duals:
            other_score = weights.ws * other.a + weights.wt * other.b
            for oid, target_score in targets:
                if other.oid == oid:
                    continue
                if other_score > target_score or (
                    other_score == target_score and other.oid < oid  # yasklint: disable=YASK103 -- the documented (score desc, oid asc) tie rule; scores are bit-identical by the kernel parity contract
                ):
                    beaten[oid] += 1
        return {oid: count + 1 for oid, count in beaten.items()}
