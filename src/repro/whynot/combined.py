"""Combined refinement: both models applied together (Section 3.2).

"Users can apply the two refinement functions simultaneously to find
better solutions."  The demonstration GUI lets a user chain the two
models; this module automates the chaining: it composes keyword adaption
and preference adjustment in both orders, evaluates each composition's
*combined* penalty, and returns the cheapest refined query — which is
never worse than the better single model, and is strictly better
whenever the missing objects suffer from both a keyword mismatch and a
preference imbalance at once.

Combined penalty.  The two penalty functions (Eqns. 3 and 4) share the
``Δk`` term and normalise their modification terms into [0, 1]; a
two-stage refinement ``q → q' → q''`` changes keywords by ``Δdoc``,
weights by ``Δ~w`` and the result size once (to the final
``R(M, q'')``).  The natural composition keeps the λ-weighted structure::

    Penalty(q, q'')_both = λ · Δk / (R(M,q) − q.k)
                        + (1−λ)/2 · Δ~w / sqrt(1 + q.ws² + q.wt²)
                        + (1−λ)/2 · Δdoc / |q.doc ∪ M.doc|

i.e. the modification budget is split evenly across the two modification
channels, so a pure single-model refinement scores exactly half its
single-model modification term — making combined penalties comparable
*within* this module but not directly against Eqns. (3)/(4) (the
single-model answers are also reported for that purpose).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.objects import SpatialObject
from repro.core.query import SpatialKeywordQuery
from repro.core.scoring import Scorer
from repro.whynot.keyword import KeywordAdapter, KeywordRefinement
from repro.whynot.penalty import missing_doc_union
from repro.whynot.preference import PreferenceAdjuster, PreferenceRefinement

__all__ = ["CombinedRefinement", "CombinedRefiner"]

from typing import Sequence


@dataclass(frozen=True, slots=True)
class CombinedRefinement:
    """A two-stage refined query with full attribution.

    ``order`` records which model ran first ("keyword-first" or
    "preference-first"); the intermediate single-model refinements are
    kept so clients can show the steps the GUI walks through.
    """

    refined_query: SpatialKeywordQuery
    penalty: float
    delta_k: int
    delta_w: float
    delta_doc: int
    refined_worst_rank: int
    initial_worst_rank: int
    lam: float
    order: str
    keyword_stage: KeywordRefinement | None
    preference_stage: PreferenceRefinement | None

    def describe(self) -> str:
        w = self.refined_query.weights
        return (
            f"combined ({self.order}): keywords={sorted(self.refined_query.doc)}, "
            f"weights=({w.ws:.4f}, {w.wt:.4f}), k={self.refined_query.k} "
            f"(Δdoc={self.delta_doc}, Δw={self.delta_w:.4f}, Δk={self.delta_k}), "
            f"penalty={self.penalty:.4f}"
        )


class CombinedRefiner:
    """Chains keyword adaption and preference adjustment (both orders)."""

    def __init__(
        self,
        scorer: Scorer,
        preference: PreferenceAdjuster,
        keyword: KeywordAdapter,
    ) -> None:
        self._scorer = scorer
        self._preference = preference
        self._keyword = keyword

    # ------------------------------------------------------------------
    def refine(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[SpatialObject],
        *,
        lam: float = 0.5,
    ) -> CombinedRefinement:
        """Return the cheaper of the two model-composition orders.

        Each order runs its first model on the initial query, resets
        ``k`` back to the user's ``k`` for the intermediate query (the
        second stage re-derives the final k from the final worst rank),
        then runs the second model.  Stages that raise
        :class:`NotMissingError` mean the first stage alone already
        revived the objects within the original ``k`` — the composition
        degenerates to that single stage.
        """
        if not missing:
            raise ValueError("the missing object set M must not be empty")
        initial_worst = self._scorer.worst_rank(missing, query)

        candidates = [
            self._keyword_then_preference(query, missing, lam),
            self._preference_then_keyword(query, missing, lam),
        ]
        best = min(
            candidates,
            key=lambda c: (c.penalty, c.delta_doc + c.delta_k, c.order),
        )
        return CombinedRefinement(
            refined_query=best.refined_query,
            penalty=best.penalty,
            delta_k=best.delta_k,
            delta_w=best.delta_w,
            delta_doc=best.delta_doc,
            refined_worst_rank=best.refined_worst_rank,
            initial_worst_rank=initial_worst,
            lam=lam,
            order=best.order,
            keyword_stage=best.keyword_stage,
            preference_stage=best.preference_stage,
        )

    # ------------------------------------------------------------------
    def _combined_penalty(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[SpatialObject],
        initial_worst: int,
        final_query: SpatialKeywordQuery,
        final_worst: int,
        lam: float,
    ) -> tuple[float, int, float, int]:
        """Evaluate the combined penalty; returns (penalty, Δk, Δw, Δdoc)."""
        delta_k = max(0, final_worst - query.k)
        delta_w = query.weights.distance_to(final_query.weights)
        delta_doc = len(query.doc ^ final_query.doc)
        k_normaliser = float(initial_worst - query.k)
        doc_normaliser = float(len(query.doc | missing_doc_union(missing)))
        penalty = (
            lam * delta_k / k_normaliser
            + (1.0 - lam) / 2.0 * delta_w / query.weights.penalty_normaliser
            + (1.0 - lam) / 2.0 * delta_doc / doc_normaliser
        )
        return penalty, delta_k, delta_w, delta_doc

    def _finalise(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[SpatialObject],
        lam: float,
        order: str,
        final_query: SpatialKeywordQuery,
        keyword_stage: KeywordRefinement | None,
        preference_stage: PreferenceRefinement | None,
    ) -> CombinedRefinement:
        initial_worst = self._scorer.worst_rank(missing, query)
        final_worst = self._scorer.worst_rank(missing, final_query)
        final_query = final_query.with_k(max(query.k, final_worst))
        penalty, delta_k, delta_w, delta_doc = self._combined_penalty(
            query, missing, initial_worst, final_query, final_worst, lam
        )
        return CombinedRefinement(
            refined_query=final_query,
            penalty=penalty,
            delta_k=delta_k,
            delta_w=delta_w,
            delta_doc=delta_doc,
            refined_worst_rank=final_worst,
            initial_worst_rank=initial_worst,
            lam=lam,
            order=order,
            keyword_stage=keyword_stage,
            preference_stage=preference_stage,
        )

    def _keyword_then_preference(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[SpatialObject],
        lam: float,
    ) -> CombinedRefinement:
        from repro.whynot.errors import NotMissingError

        keyword_stage = self._keyword.refine(query, missing, lam=lam)
        intermediate = keyword_stage.refined_query.with_k(query.k)
        preference_stage: PreferenceRefinement | None = None
        try:
            preference_stage = self._preference.refine(
                intermediate, missing, lam=lam
            )
            final_query = preference_stage.refined_query
        except NotMissingError:
            # Keyword adaption alone already brought M inside k.
            final_query = intermediate
        return self._finalise(
            query, missing, lam, "keyword-first", final_query,
            keyword_stage, preference_stage,
        )

    def _preference_then_keyword(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[SpatialObject],
        lam: float,
    ) -> CombinedRefinement:
        from repro.whynot.errors import NotMissingError

        preference_stage = self._preference.refine(query, missing, lam=lam)
        intermediate = preference_stage.refined_query.with_k(query.k)
        keyword_stage: KeywordRefinement | None = None
        try:
            keyword_stage = self._keyword.refine(intermediate, missing, lam=lam)
            final_query = keyword_stage.refined_query
        except NotMissingError:
            final_query = intermediate
        return self._finalise(
            query, missing, lam, "preference-first", final_query,
            keyword_stage, preference_stage,
        )
