"""Keyword-adapted why-not refinement (Definition 3, Eqn. 4).

Section 3.3 of the paper: "The keyword-adapted why-not module is
implemented using an optimized bound and prune algorithm [6].  The
algorithm is based on ... the KcR-tree ... Given a KcR-tree node N, for
a query keyword set q.doc, we can estimate the upper and lower bounds on
the number of objects in N that rank higher than a missing object, and
thus we can estimate the upper and lower bounds of the ranks of missing
objects and the penalties of the corresponding refined query. ...  We
generate the candidate query keyword sets and then traverse the KcR-tree
starting from the root.  For each candidate refined keyword set q'.doc,
we maintain its penalty upper and lower bounds according to the ranking
bounds derived from KcR-tree nodes.  When traversing the KcR-tree
downwards, we get tighter bounds.  We prune the keyword sets whose
penalty bounds exceed the currently seen best one."

Reconstruction (DESIGN.md §3.4):

* **Candidates** are ``S = (q.doc \\ D) ∪ A`` with ``D ⊆ q.doc`` and
  ``A ⊆ M.doc \\ q.doc``, enumerated in increasing edit count
  ``Δdoc = |D| + |A|``.  Only keywords of the missing objects are worth
  adding — any other keyword lowers every missing object's Jaccard
  similarity *and* costs an edit.
* **Admissible cut:** a candidate with ``Δdoc = e`` has penalty at least
  ``(1−λ)·e / |q.doc ∪ M.doc|``; once that floor reaches the best
  penalty seen, every remaining (larger-edit) candidate is pruned and
  enumeration stops.
* **Bound and prune per candidate:** a candidate only needs its exact
  worst rank if that rank is small enough to beat the best penalty; the
  KcR-tree descent accumulates guaranteed beaters (rank lower bound) and
  abandons the candidate as soon as the bound crosses the useful-rank
  cap, resolving nodes to exact counts only where the node bounds
  straddle the missing object's score.

The node-level count bounds come from the KcR-tree payload of Fig. 2
(keyword-count map + ``cnt``, plus the min/max doc length reconstruction
detail) combined with MINDIST/MAXDIST on the node MBR — see
:meth:`KeywordAdapter._node_beater_bounds`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import AbstractSet, Callable, Iterator, Sequence

from repro.core.objects import SpatialObject
from repro.core.query import SpatialKeywordQuery
from repro.core.scoring import Scorer
from repro.index.kcrtree import KcRTree, KcSummary
from repro.index.rtree import RTreeNode
from repro.text.similarity import JaccardSimilarity
from repro.whynot.errors import NotMissingError
from repro.whynot.penalty import KeywordPenalty

__all__ = ["KeywordRefinement", "KeywordAdapter", "AdaptionStats"]

#: Safety margin when comparing derived float bounds against exact scores.
_BOUND_MARGIN = 1e-9


@dataclass(frozen=True, slots=True)
class KeywordRefinement:
    """The answer to a keyword-adapted why-not question.

    ``refined_query`` differs from the initial query only in its keyword
    set and (possibly) its ``k`` (Definition 3: ``q' = (loc, doc', k', ~w)``).
    """

    refined_query: SpatialKeywordQuery
    penalty: float
    delta_k: int
    delta_doc: int
    added: frozenset[str]
    removed: frozenset[str]
    refined_worst_rank: int
    initial_worst_rank: int
    lam: float
    stats: "AdaptionStats"
    method: str = "kcr-bound-prune"

    @property
    def k_only(self) -> bool:
        """True when the refinement keeps q.doc and only enlarges k."""
        return self.delta_doc == 0

    def describe(self) -> str:
        added = ", ".join(sorted(self.added)) or "-"
        removed = ", ".join(sorted(self.removed)) or "-"
        return (
            f"refined keywords={sorted(self.refined_query.doc)} "
            f"(+[{added}] -[{removed}]), k={self.refined_query.k} "
            f"(Δk={self.delta_k}, Δdoc={self.delta_doc}), penalty={self.penalty:.4f}"
        )


@dataclass(slots=True)
class AdaptionStats:
    """Work counters of one adaption run (the E5 pruning-ratio metrics)."""

    candidates_generated: int = 0
    candidates_pruned: int = 0
    candidates_evaluated: int = 0
    edit_levels_explored: int = 0
    nodes_expanded: int = 0
    nodes_resolved_by_bounds: int = 0
    objects_scored: int = 0

    @property
    def prune_ratio(self) -> float:
        """Fraction of generated candidates abandoned before exact ranking."""
        if self.candidates_generated == 0:
            return 0.0
        return self.candidates_pruned / self.candidates_generated


class KeywordAdapter:
    """The keyword-adaption module of YASK's why-not engine."""

    def __init__(
        self,
        scorer: Scorer,
        index: KcRTree,
        *,
        use_bounds: bool = True,
        max_edit_count: int | None = None,
        candidate_budget: int | None = None,
    ) -> None:
        """
        Parameters
        ----------
        scorer:
            Shared Eqn. (1) evaluator.  The KcR-tree bounds are derived
            for the Jaccard model; ``use_bounds=True`` therefore requires
            it (Eqn. 2 is the paper's default model).
        index:
            A :class:`KcRTree` over the scorer's database.
        use_bounds:
            When False, every candidate's worst rank is computed by a
            full database scan — the exhaustive baseline of experiment
            E5/E8.
        max_edit_count:
            Optional hard cap on ``Δdoc`` (None = bounded only by the
            admissible penalty cut).
        candidate_budget:
            Optional hard cap on generated candidates, for defensive use
            with extreme ``λ`` values where the Δdoc term vanishes.
        """
        if use_bounds and not isinstance(scorer.text_model, JaccardSimilarity):
            raise ValueError(
                "KcR-tree rank bounds are derived for the Jaccard model; "
                "use use_bounds=False for other text models"
            )
        if index.database is not scorer.database:
            raise ValueError("index and scorer must share the same database")
        if candidate_budget is not None and candidate_budget < 1:
            raise ValueError("candidate_budget must be at least 1")
        self._scorer = scorer
        self._index = index
        self._use_bounds = use_bounds
        self._max_edit_count = max_edit_count
        self._candidate_budget = candidate_budget

    @property
    def scorer(self) -> Scorer:
        return self._scorer

    @property
    def index(self) -> KcRTree:
        return self._index

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def refine(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[SpatialObject],
        *,
        lam: float = 0.5,
    ) -> KeywordRefinement:
        """Answer Definition 3 for missing set ``missing`` under ``λ``."""
        if not missing:
            raise ValueError("the missing object set M must not be empty")
        initial_worst = self._scorer.worst_rank(missing, query)
        if initial_worst <= query.k:
            ranks = [
                obj.oid
                for obj in missing
                if self._scorer.rank_of(obj, query) <= query.k
            ]
            raise NotMissingError(ranks)

        penalty = KeywordPenalty(query, missing, initial_worst, lam)
        stats = AdaptionStats()

        # Spatial proximities are shared by every candidate; the ranker
        # caches them once and scores candidates through the columnar
        # kernel (bitmask TSim) when the scorer carries one.
        ranker = _CandidateRanker(self._scorer, query)

        best_doc: frozenset[str] | None = None
        best_worst: int | None = None
        best_penalty = math.inf

        for edit_count, candidate in self._enumerate_candidates(
            query, missing, penalty, lambda: best_penalty, stats
        ):
            rank_cap = self._useful_rank_cap(
                penalty, edit_count, best_penalty, query.k
            )
            worst = self._worst_rank_capped(
                query, candidate, missing, ranker, rank_cap, stats
            )
            if worst is None:
                stats.candidates_pruned += 1
                continue
            stats.candidates_evaluated += 1
            pen = penalty(worst, candidate)
            if self._improves(
                pen, candidate, best_penalty, best_doc, query.doc
            ):
                best_penalty = pen
                best_doc = candidate
                best_worst = worst

        assert best_doc is not None and best_worst is not None  # e=0 candidate
        refined_k = penalty.refined_k(best_worst)
        refined_query = query.with_doc(best_doc).with_k(refined_k)
        return KeywordRefinement(
            refined_query=refined_query,
            penalty=best_penalty,
            delta_k=penalty.delta_k(best_worst),
            delta_doc=penalty.delta_doc(best_doc),
            added=frozenset(best_doc - query.doc),
            removed=frozenset(query.doc - best_doc),
            refined_worst_rank=best_worst,
            initial_worst_rank=initial_worst,
            lam=lam,
            stats=stats,
            method="kcr-bound-prune" if self._use_bounds else "exhaustive-scan",
        )

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------
    def _enumerate_candidates(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[SpatialObject],
        penalty: KeywordPenalty,
        best_penalty: Callable[[], float],
        stats: AdaptionStats,
    ) -> Iterator[tuple[int, frozenset[str]]]:
        """Yield ``(edit_count, candidate_doc)`` in increasing edit count.

        Stops as soon as the admissible keyword-term floor of the next
        edit level reaches the best penalty seen so far (read through the
        ``best_penalty`` thunk, which tracks the caller's running best).
        """
        original = sorted(query.doc)
        addition_pool = sorted(penalty.missing_doc - query.doc)
        max_edits = len(original) + len(addition_pool)
        if self._max_edit_count is not None:
            max_edits = min(max_edits, self._max_edit_count)

        for edit_count in range(0, max_edits + 1):
            if penalty.modification_term_for_edits(edit_count) >= best_penalty():
                return
            stats.edit_levels_explored += 1
            for deletions in range(
                max(0, edit_count - len(addition_pool)),
                min(edit_count, len(original)) + 1,
            ):
                additions = edit_count - deletions
                for removed in combinations(original, deletions):
                    kept = query.doc - frozenset(removed)
                    for added in combinations(addition_pool, additions):
                        candidate = kept | frozenset(added)
                        if not candidate:
                            continue
                        if (
                            self._candidate_budget is not None
                            and stats.candidates_generated
                            >= self._candidate_budget
                        ):
                            return
                        stats.candidates_generated += 1
                        yield edit_count, candidate

    @staticmethod
    def _useful_rank_cap(
        penalty: KeywordPenalty, edit_count: int, best_penalty: float, k: int
    ) -> int | None:
        """Largest worst-rank that could still beat ``best_penalty``.

        Solving Eqn. (4) for ``R(M, q')`` given the candidate's fixed
        keyword term.  None means unbounded (λ = 0 or no best yet).
        """
        if math.isinf(best_penalty):
            return None
        if penalty.lam == 0.0:
            return None
        headroom = best_penalty - penalty.modification_term_for_edits(edit_count)
        if headroom <= 0.0:
            return k  # only an in-result rank could tie; Δk=0 candidates
        max_delta_k = headroom * (penalty.initial_worst_rank - k) / penalty.lam
        return k + math.ceil(max_delta_k)

    @staticmethod
    def _improves(
        pen: float,
        candidate: frozenset[str],
        best_penalty: float,
        best_doc: frozenset[str] | None,
        original_doc: frozenset[str],
    ) -> bool:
        """Deterministic better-than test: penalty, then Δdoc, then lexicographic."""
        if pen < best_penalty - 1e-15:
            return True
        if pen > best_penalty + 1e-15:
            return False
        if best_doc is None:
            return True
        candidate_edits = len(original_doc ^ candidate)
        best_edits = len(original_doc ^ best_doc)
        if candidate_edits != best_edits:
            return candidate_edits < best_edits
        return sorted(candidate) < sorted(best_doc)

    # ------------------------------------------------------------------
    # Worst-rank computation (bound-and-prune or exhaustive)
    # ------------------------------------------------------------------
    def _worst_rank_capped(
        self,
        query: SpatialKeywordQuery,
        candidate: frozenset[str],
        missing: Sequence[SpatialObject],
        ranker: "_CandidateRanker",
        rank_cap: int | None,
        stats: AdaptionStats,
    ) -> int | None:
        """``R(M, q')`` for the candidate doc, or None when provably ≥ cap."""
        ranker.set_candidate(candidate)
        worst = 0
        for obj in missing:
            if self._use_bounds:
                rank = self._rank_via_kcrtree(
                    query, candidate, obj, ranker, rank_cap, stats
                )
            else:
                rank = ranker.rank_by_scan(obj, stats)
            if rank is None:
                return None
            if rank > worst:
                worst = rank
        return worst

    def _rank_via_kcrtree(
        self,
        query: SpatialKeywordQuery,
        candidate: frozenset[str],
        missing_obj: SpatialObject,
        ranker: "_CandidateRanker",
        rank_cap: int | None,
        stats: AdaptionStats,
    ) -> int | None:
        """Exact rank via KcR-tree descent, or None once provably ≥ cap.

        Nodes whose beater bounds coincide are credited without descent;
        leaves in the uncertain band are scored exactly.  ``beaters`` is
        a monotone lower bound of the final count throughout, so the cap
        check is sound at every step.
        """
        theta = ranker.score(missing_obj)
        beaters = 0
        stack: list[RTreeNode[SpatialObject]] = [self._index.root]
        while stack:
            node = stack.pop()
            if node.rect is None:
                continue
            lower, upper = self._node_beater_bounds(
                node, query, candidate, theta
            )
            if upper == 0:
                stats.nodes_resolved_by_bounds += 1
                continue
            if lower == upper:
                stats.nodes_resolved_by_bounds += 1
                beaters += lower
            elif node.is_leaf:
                for entry in node.entries:
                    other = entry.item
                    if other.oid == missing_obj.oid:
                        continue
                    stats.objects_scored += 1
                    score = ranker.score(other)
                    if score > theta or (
                        score == theta and other.oid < missing_obj.oid  # yasklint: disable=YASK103 -- the documented (score desc, oid asc) tie rule; scores are bit-identical by the kernel parity contract
                    ):
                        beaters += 1
            else:
                stats.nodes_expanded += 1
                stack.extend(node.children)
            if rank_cap is not None and beaters + 1 > rank_cap:
                return None
        return beaters + 1

    def _node_beater_bounds(
        self,
        node: RTreeNode[SpatialObject],
        query: SpatialKeywordQuery,
        candidate: frozenset[str],
        theta: float,
    ) -> tuple[int, int]:
        """Bounds on how many objects under ``node`` outrank the missing object.

        Upper bound: an object can reach score ``θ`` only with
        ``TSim ≥ τ = (θ − ws·proxmax)/wt``; under Jaccard
        ``TSim(o) ≤ |o.doc ∩ S| / max(min_len, |S|)``, so a beater needs
        at least ``c = ⌈τ·max(min_len, |S|)⌉`` of the candidate keywords,
        and the keyword-count map caps how many objects can hold ``c``
        incidences (Fig. 2's payload at work).

        Lower bound: the ``Σ KC[t] − (|S|−1)·cnt`` objects guaranteed to
        contain *all* candidate keywords have ``TSim ≥ |S|/max_len``;
        when even the node's worst proximity pushes them past ``θ`` they
        all outrank the missing object.
        """
        summary: KcSummary = node.summary
        prox_min, prox_max = self._index.proximity_bounds(node, query.loc)
        ws, wt = query.ws, query.wt

        # ---------------- upper bound ----------------
        best_overlap = summary.max_possible_overlap(candidate)
        candidate_len = len(candidate)
        # |o.doc ∪ S| ≥ max(min_len, |S|, |o.doc ∩ S|, min_len + |S| − |o.doc ∩ S|)
        # — the last term from |o∪S| = |o| + |S| − |o∩S| with |o| ≥ min_len.
        denom_floor = max(
            summary.min_doc_len,
            candidate_len,
            best_overlap,
            summary.min_doc_len + candidate_len - best_overlap,
        )
        tsim_node_ub = best_overlap / denom_floor if denom_floor else 0.0
        if ws * prox_max + wt * tsim_node_ub < theta - _BOUND_MARGIN:
            return (0, 0)
        tau = (theta - ws * prox_max) / wt if wt > 0.0 else 0.0
        if tau <= 0.0:
            upper = summary.cnt
        else:
            # Two valid necessary overlap conditions for TSim(o, S) ≥ τ;
            # take the stronger:
            #   x ≥ τ·max(min_len, |S|)          (from |o∪S| ≥ max(min_len,|S|))
            #   x ≥ τ·(min_len + |S|)/(1 + τ)    (from |o∪S| = |o|+|S|−x)
            required = math.ceil(
                max(
                    tau * max(summary.min_doc_len, candidate_len),
                    tau * (summary.min_doc_len + candidate_len) / (1.0 + tau),
                )
                - _BOUND_MARGIN
            )
            if required > best_overlap:
                upper = 0
            else:
                upper = summary.count_with_overlap_at_least(
                    candidate, max(required, 1)
                )
        if upper == 0:
            return (0, 0)

        # ---------------- lower bound ----------------
        lower = 0
        full = summary.count_containing_all(candidate)
        if full > 0 and summary.max_doc_len > 0:
            guaranteed_tsim = len(candidate) / max(
                summary.max_doc_len, len(candidate)
            )
            if ws * prox_min + wt * guaranteed_tsim > theta + _BOUND_MARGIN:
                lower = full
        return (min(lower, upper), upper)


class _CandidateRanker:
    """Candidate-set scoring with shared spatial proximities.

    Every candidate keyword set shares the query's spatial term, so the
    proximities are cached once per refine run.  With a columnar kernel
    on the scorer, proximities live in a row-indexed ``array('d')`` and
    each candidate is encoded to a bitmask :class:`DocContext` — ``TSim``
    per object is then bit arithmetic.  Without one (non-set models),
    the original oid-keyed dict and ``similarity`` calls apply.  Both
    paths produce identical floats.
    """

    __slots__ = (
        "_scorer",
        "_ws",
        "_wt",
        "_kernel",
        "_prox",
        "_proximity",
        "_candidate",
        "_ctx",
    )

    def __init__(self, scorer: Scorer, query: SpatialKeywordQuery) -> None:
        self._scorer = scorer
        self._ws = query.ws
        self._wt = query.wt
        self._kernel = scorer.kernel
        if self._kernel is not None:
            self._prox = self._kernel.proximities(query)
            self._proximity: dict[int, float] | None = None
        else:
            self._prox = None
            self._proximity = {
                obj.oid: 1.0 - scorer.sdist(obj, query)
                for obj in scorer.database
            }
        self._candidate: AbstractSet[str] | None = None
        self._ctx = None

    def set_candidate(self, candidate: AbstractSet[str]) -> None:
        """Bind the candidate keyword set subsequent scores are under."""
        self._candidate = candidate
        if self._kernel is not None:
            self._ctx = self._kernel.doc_context(candidate)

    def score(self, obj: SpatialObject) -> float:
        """``ST(o, q')`` under the bound candidate keyword set."""
        if self._ctx is not None:
            row = self._kernel.row_of(obj.oid)
            return (
                self._ws * self._prox[row]
                + self._wt * self._ctx.tsim_row(row)
            )
        tsim = self._scorer.text_model.similarity(obj.doc, self._candidate)
        return self._ws * self._proximity[obj.oid] + self._wt * tsim

    def rank_by_scan(
        self, missing_obj: SpatialObject, stats: AdaptionStats
    ) -> int:
        """Exact rank of ``missing_obj`` by scoring the whole database."""
        stats.objects_scored += len(self._scorer.database) - 1
        if self._ctx is not None:
            return self._ctx.rank_scan(
                self._ws, self._wt, self._prox, missing_obj.oid
            )
        theta = self.score(missing_obj)
        missing_oid = missing_obj.oid
        beaters = 0
        for other in self._scorer.database:
            if other.oid == missing_oid:
                continue
            score = self.score(other)
            if score > theta or (score == theta and other.oid < missing_oid):  # yasklint: disable=YASK103 -- the documented (score desc, oid asc) tie rule; scores are bit-identical by the kernel parity contract
                beaters += 1
        return beaters + 1
