"""Baseline algorithms the benchmarks compare YASK's modules against.

* :class:`SamplingPreferenceAdjuster` — the sampling strategy in the
  style of He & Lo's top-k why-not answering [8], which [5] uses as its
  comparison point: probe a grid of weight vectors, rank the missing
  objects at each probe and keep the cheapest refined query found.
  Sampling is approximate — it only finds the optimum when a probe lands
  in the optimal rank interval — and its cost grows linearly with the
  probe count (experiment E4).
* :func:`exhaustive_keyword_adapter` — keyword adaption without the
  KcR-tree rank bounds: every candidate keyword set is ranked with a
  full database scan (experiment E5).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.objects import SpatialObject
from repro.core.query import SpatialKeywordQuery, Weights
from repro.core.scoring import Scorer
from repro.index.kcrtree import KcRTree
from repro.whynot.errors import NotMissingError
from repro.whynot.keyword import KeywordAdapter
from repro.whynot.penalty import PreferencePenalty
from repro.whynot.preference import PreferenceAdjuster, PreferenceRefinement

__all__ = ["SamplingPreferenceAdjuster", "exhaustive_keyword_adapter"]


class SamplingPreferenceAdjuster:
    """Grid-sampling baseline for preference-adjusted why-not queries.

    Probes ``samples`` evenly spaced spatial weights in ``(0, 1)`` plus
    the initial weight, computes the exact worst rank of the missing
    objects at each probe, and returns the probe minimising Eqn. (3).
    """

    def __init__(self, scorer: Scorer, *, samples: int = 100) -> None:
        if samples < 1:
            raise ValueError("samples must be at least 1")
        self._scorer = scorer
        self._samples = samples

    @property
    def samples(self) -> int:
        return self._samples

    def refine(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[SpatialObject],
        *,
        lam: float = 0.5,
    ) -> PreferenceRefinement:
        if not missing:
            raise ValueError("the missing object set M must not be empty")
        duals = self._scorer.dual_points(query)
        by_oid = {dual.oid: dual for dual in duals}
        missing_duals = [by_oid[obj.oid] for obj in missing]

        ranks = PreferenceAdjuster._ranks_at_weights(
            query.weights, missing_duals, duals
        )
        initial_worst = max(ranks.values())
        if initial_worst <= query.k:
            raise NotMissingError(
                [oid for oid, rank in ranks.items() if rank <= query.k]
            )
        penalty = PreferencePenalty(query, initial_worst, lam)

        candidates: list[Weights] = [query.weights]
        step = 1.0 / (self._samples + 1)
        for index in range(1, self._samples + 1):
            candidates.append(Weights.from_spatial(index * step))

        best_weights = query.weights
        best_worst = initial_worst
        best_penalty = penalty(initial_worst, query.weights)
        for weights in candidates[1:]:
            probe_ranks = PreferenceAdjuster._ranks_at_weights(
                weights, missing_duals, duals
            )
            worst = max(probe_ranks.values())
            pen = penalty(worst, weights)
            if pen < best_penalty:
                best_penalty = pen
                best_weights = weights
                best_worst = worst

        refined_k = penalty.refined_k(best_worst)
        refined_query = query.with_weights(best_weights).with_k(refined_k)
        return PreferenceRefinement(
            refined_query=refined_query,
            penalty=best_penalty,
            delta_k=penalty.delta_k(best_worst),
            delta_w=query.weights.distance_to(best_weights),
            refined_worst_rank=best_worst,
            initial_worst_rank=initial_worst,
            lam=lam,
            crossovers=0,
            candidates_evaluated=len(candidates),
            method=f"sampling-{self._samples}",
        )


def exhaustive_keyword_adapter(
    scorer: Scorer,
    index: KcRTree,
    *,
    max_edit_count: int | None = None,
    candidate_budget: int | None = None,
) -> KeywordAdapter:
    """Keyword adaption with KcR-tree rank bounds disabled (full scans)."""
    return KeywordAdapter(
        scorer,
        index,
        use_bounds=False,
        max_edit_count=max_edit_count,
        candidate_budget=candidate_budget,
    )
