"""The penalty functions of Eqns. (3) and (4).

Both refinement models score a refined query ``q'`` by how far it
departs from the user's initial query ``q``:

* **Preference adjustment** (Eqn. 3)::

      Penalty(q, q')_w = λ · Δk / (R(M, q) − q.k)
                       + (1 − λ) · Δ~w / sqrt(1 + q.ws² + q.wt²)

* **Keyword adaption** (Eqn. 4)::

      Penalty(q, q')_doc = λ · Δk / (R(M, q) − q.k)
                         + (1 − λ) · Δdoc / |q.doc ∪ M.doc|

with ``Δk = max(0, R(M, q') − q.k)`` (the paper: "if R(M, q') > q.k,
q'.k should be set to R(M, q') to achieve the lowest penalty; otherwise,
q.k does not need to be modified"), ``Δ~w = ||q.~w − q'.~w||₂`` and
``Δdoc`` the edit distance between keyword sets (insertions/deletions).

``λ`` expresses the user's relative tolerance for enlarging ``k`` versus
modifying the weights/keywords; its effect is the subject of the paper's
"Query Refinement Effectiveness" demonstration (experiment E6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import AbstractSet, Iterable

from repro.core.objects import SpatialObject
from repro.core.query import SpatialKeywordQuery, Weights

__all__ = [
    "missing_doc_union",
    "keyword_edit_distance",
    "PreferencePenalty",
    "KeywordPenalty",
]


def missing_doc_union(missing: Iterable[SpatialObject]) -> frozenset[str]:
    """``M.doc = ∪_{o ∈ M} o.doc`` (Eqn. 4's normalisation constant)."""
    union: set[str] = set()
    for obj in missing:
        union |= obj.doc
    return frozenset(union)


def keyword_edit_distance(
    original: AbstractSet[str], refined: AbstractSet[str]
) -> int:
    """``Δdoc``: minimum insertions/deletions turning one set into the other.

    For sets this is exactly the symmetric difference size — each missing
    keyword needs one insertion, each extra keyword one deletion.
    """
    return len(original ^ refined)


def _validate_lambda(lam: float) -> None:
    if not 0.0 <= lam <= 1.0:
        raise ValueError(f"λ must lie in [0, 1], got {lam}")


@dataclass(frozen=True, slots=True)
class PenaltyBreakdown:
    """A penalty value with its two weighted components."""

    total: float
    k_component: float
    modification_component: float
    delta_k: int


class PreferencePenalty:
    """Evaluator of Eqn. (3) for a fixed initial query and why-not question.

    Frozen at construction: the initial query, ``R(M, q)`` (the lowest
    rank of the missing objects under the initial query — must exceed
    ``q.k`` for the question to be well posed) and ``λ``.
    """

    def __init__(
        self,
        query: SpatialKeywordQuery,
        initial_worst_rank: int,
        lam: float = 0.5,
    ) -> None:
        _validate_lambda(lam)
        if initial_worst_rank <= query.k:
            raise ValueError(
                "R(M, q) must exceed q.k for a why-not question "
                f"(got R={initial_worst_rank}, k={query.k})"
            )
        self._query = query
        self._initial_worst_rank = initial_worst_rank
        self._lam = lam
        self._k_normaliser = float(initial_worst_rank - query.k)
        self._w_normaliser = query.weights.penalty_normaliser

    @property
    def lam(self) -> float:
        return self._lam

    @property
    def initial_worst_rank(self) -> int:
        return self._initial_worst_rank

    def delta_k(self, refined_worst_rank: int) -> int:
        """``Δk = max(0, R(M, q') − q.k)``."""
        return max(0, refined_worst_rank - self._query.k)

    def refined_k(self, refined_worst_rank: int) -> int:
        """The k the refined query must use to cover all of ``M``."""
        return max(self._query.k, refined_worst_rank)

    def _components(self, delta_k: int, delta_w: float) -> tuple[float, float]:
        """``(k_component, modification_component)`` of Eqn. (3).

        The single copy of the penalty arithmetic: every evaluation
        path — component breakdowns, the verification ``__call__`` and
        the sweep's :meth:`value_at` — must go through it so their
        floats can never desynchronise.
        """
        k_component = self._lam * delta_k / self._k_normaliser
        modification = (1.0 - self._lam) * delta_w / self._w_normaliser
        return k_component, modification

    def breakdown(
        self, refined_worst_rank: int, refined_weights: Weights
    ) -> PenaltyBreakdown:
        """Evaluate Eqn. (3) with full component attribution."""
        delta_k = self.delta_k(refined_worst_rank)
        delta_w = self._query.weights.distance_to(refined_weights)
        k_component, modification = self._components(delta_k, delta_w)
        return PenaltyBreakdown(
            total=k_component + modification,
            k_component=k_component,
            modification_component=modification,
            delta_k=delta_k,
        )

    def __call__(
        self, refined_worst_rank: int, refined_weights: Weights
    ) -> float:
        delta_k = self.delta_k(refined_worst_rank)
        delta_w = self._query.weights.distance_to(refined_weights)
        k_component, modification = self._components(delta_k, delta_w)
        return k_component + modification

    def value_at(self, refined_worst_rank: int, w: float) -> float:
        """Eqn. (3) at spatial weight ``w``, allocation-free.

        The preference sweep evaluates the penalty at one candidate
        weight per crossover; building a validated :class:`Weights` per
        candidate is pure overhead there.  ``Weights.from_spatial``
        stores ``(w, 1 − w)`` and ``distance_to`` is the same hypot, so
        the floats are identical to
        ``__call__(rank, Weights.from_spatial(w))``.
        """
        delta_k = self.delta_k(refined_worst_rank)
        weights = self._query.weights
        delta_w = math.hypot(weights.ws - w, weights.wt - (1.0 - w))
        k_component, modification = self._components(delta_k, delta_w)
        return k_component + modification

    def modification_term(self, refined_weights: Weights) -> float:
        """The weight-change term alone — a lower bound on the penalty."""
        delta_w = self._query.weights.distance_to(refined_weights)
        return (1.0 - self._lam) * delta_w / self._w_normaliser


class KeywordPenalty:
    """Evaluator of Eqn. (4) for a fixed initial query and why-not question.

    ``Δdoc`` is normalised by ``|q.doc ∪ M.doc|``, "the maximum possible
    number of edit operations needed to modify q.doc to a keyword set
    that ... retrieves all missing objects in M".
    """

    def __init__(
        self,
        query: SpatialKeywordQuery,
        missing: Iterable[SpatialObject],
        initial_worst_rank: int,
        lam: float = 0.5,
    ) -> None:
        _validate_lambda(lam)
        if initial_worst_rank <= query.k:
            raise ValueError(
                "R(M, q) must exceed q.k for a why-not question "
                f"(got R={initial_worst_rank}, k={query.k})"
            )
        self._query = query
        self._missing_doc = missing_doc_union(missing)
        self._initial_worst_rank = initial_worst_rank
        self._lam = lam
        self._k_normaliser = float(initial_worst_rank - query.k)
        self._doc_normaliser = float(len(query.doc | self._missing_doc))

    @property
    def lam(self) -> float:
        return self._lam

    @property
    def initial_worst_rank(self) -> int:
        return self._initial_worst_rank

    @property
    def missing_doc(self) -> frozenset[str]:
        """``M.doc`` — the union keyword set of the missing objects."""
        return self._missing_doc

    @property
    def doc_normaliser(self) -> float:
        return self._doc_normaliser

    def delta_k(self, refined_worst_rank: int) -> int:
        return max(0, refined_worst_rank - self._query.k)

    def refined_k(self, refined_worst_rank: int) -> int:
        return max(self._query.k, refined_worst_rank)

    def delta_doc(self, refined_doc: AbstractSet[str]) -> int:
        return keyword_edit_distance(self._query.doc, refined_doc)

    def breakdown(
        self, refined_worst_rank: int, refined_doc: AbstractSet[str]
    ) -> PenaltyBreakdown:
        """Evaluate Eqn. (4) with full component attribution."""
        delta_k = self.delta_k(refined_worst_rank)
        delta_doc = self.delta_doc(refined_doc)
        k_component = self._lam * delta_k / self._k_normaliser
        modification = (1.0 - self._lam) * delta_doc / self._doc_normaliser
        return PenaltyBreakdown(
            total=k_component + modification,
            k_component=k_component,
            modification_component=modification,
            delta_k=delta_k,
        )

    def __call__(
        self, refined_worst_rank: int, refined_doc: AbstractSet[str]
    ) -> float:
        return self.breakdown(refined_worst_rank, refined_doc).total

    def modification_term_for_edits(self, edit_count: int) -> float:
        """Keyword-term lower bound for any candidate with ``edit_count`` edits.

        This is the admissible bound behind the enumeration cut-off of
        the adaption algorithm: a candidate with ``Δdoc = e`` can never
        have penalty below ``(1 − λ)·e / |q.doc ∪ M.doc|``.
        """
        return (1.0 - self._lam) * edit_count / self._doc_normaliser
