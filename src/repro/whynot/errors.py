"""Error types of the why-not engine."""

from __future__ import annotations

__all__ = ["WhyNotError", "NotMissingError", "UnknownObjectError"]


class WhyNotError(Exception):
    """Base class for why-not engine failures."""


class NotMissingError(WhyNotError):
    """Raised when a 'missing' object is already in the query result.

    Definitions 2 and 3 presuppose ``M`` contains objects absent from the
    initial result (``R(M, q) > q.k``); asking why-not about a returned
    object has no answer and the penalty normaliser ``R(M,q) − q.k``
    would degenerate to zero.
    """

    def __init__(self, object_ids: list[int]) -> None:
        self.object_ids = object_ids
        listed = ", ".join(str(oid) for oid in object_ids)
        super().__init__(
            f"object(s) {listed} already appear in the top-k result; "
            "nothing is missing to explain"
        )


class UnknownObjectError(WhyNotError):
    """Raised when a why-not question references an object outside ``D``.

    The models require ``M ⊂ D`` — YASK can only explain the exclusion of
    objects the database knows about.
    """

    def __init__(self, reference: object) -> None:
        self.reference = reference
        super().__init__(f"object {reference!r} is not in the database")
