"""The explanation generator module (Section 3.3).

"Given a missing object, this module generates an explanation by
analyzing its spatial proximity and textual relevance with respect to
the initial query based on the SetR-tree [6].  The reason can be that
the missing object is too far away from the query location or that the
missing object is not so relevant to the set of query keywords.  The
ranking of the missing object under the initial query is also provided."

For each missing object the generator reports:

* its exact rank under the initial query (and the gap to ``k``),
* its score decomposition versus the k-th result object's,
* how many objects are strictly closer and how many are strictly more
  textually similar — both answered with SetR-tree counting queries,
* a categorical reason (:class:`MissingReason`) and a human-readable
  sentence the demonstration GUI's explanation panel displays (Fig. 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.core.objects import SpatialObject
from repro.core.query import QueryResult, SpatialKeywordQuery
from repro.core.scoring import ScoreBreakdown, Scorer
from repro.index.setrtree import SetRTree
from repro.whynot.errors import NotMissingError

__all__ = ["MissingReason", "ObjectExplanation", "WhyNotExplanation", "ExplanationGenerator"]


class MissingReason(enum.Enum):
    """Why a desired object did not enter the top-k result."""

    #: Spatially out of reach: farther than the k-th result while at
    #: least as textually relevant.
    TOO_FAR = "too-far"
    #: Textually out of reach: less relevant than the k-th result while
    #: at least as close.
    LOW_RELEVANCE = "low-text-relevance"
    #: Behind on both components.
    BOTH = "too-far-and-low-relevance"
    #: Ahead on one component but the preference weighting lets the other
    #: dominate — the signature case for preference adjustment.
    PREFERENCE_IMBALANCE = "preference-imbalance"

    def headline(self) -> str:
        return {
            MissingReason.TOO_FAR: "the object is too far from the query location",
            MissingReason.LOW_RELEVANCE: (
                "the object's keywords match the query keywords poorly"
            ),
            MissingReason.BOTH: (
                "the object is both far from the query location and a poor "
                "keyword match"
            ),
            MissingReason.PREFERENCE_IMBALANCE: (
                "the object wins on one ranking component but the current "
                "preference weights favour the other"
            ),
        }[self]


@dataclass(frozen=True, slots=True)
class ObjectExplanation:
    """Explanation for one missing object."""

    obj: SpatialObject
    rank: int
    k: int
    breakdown: ScoreBreakdown
    kth_breakdown: ScoreBreakdown | None
    closer_objects: int
    more_similar_objects: int
    reason: MissingReason
    #: Spatial-weight intervals that alone would bring the object into
    #: the top-k ("How can the ranking function be adjusted so that the
    #: Starbucks cafe appears in the result?" — Example 1).  None when
    #: the generator was built without a preference adjuster.
    viable_ws_intervals: tuple[tuple[float, float], ...] | None = None

    @property
    def ranks_behind(self) -> int:
        """How many positions beyond the result the object sits."""
        return max(0, self.rank - self.k)

    @property
    def fixable_by_weights_alone(self) -> bool | None:
        """Whether some preference vector alone revives the object.

        None when weight-interval analysis was not performed.
        """
        if self.viable_ws_intervals is None:
            return None
        return len(self.viable_ws_intervals) > 0

    def narrative(self) -> str:
        """The sentence shown in the explanation panel (Fig. 5)."""
        lines = [
            f"{self.obj.label} ranks #{self.rank} under your query "
            f"(the result shows the top {self.k}).",
            f"Reason: {self.reason.headline()}.",
            f"Its score is {self.breakdown.score:.4f} "
            f"(spatial distance {self.breakdown.sdist:.4f}, "
            f"textual similarity {self.breakdown.tsim:.4f}).",
        ]
        if self.kth_breakdown is not None:
            lines.append(
                f"The last returned object scores {self.kth_breakdown.score:.4f} "
                f"(spatial distance {self.kth_breakdown.sdist:.4f}, "
                f"textual similarity {self.kth_breakdown.tsim:.4f})."
            )
        lines.append(
            f"{self.closer_objects} object(s) are closer to the query location "
            f"and {self.more_similar_objects} object(s) match the keywords better."
        )
        if self.viable_ws_intervals is not None:
            if self.viable_ws_intervals:
                ranges = ", ".join(
                    f"[{lo:.3f}, {hi:.3f}]" for lo, hi in self.viable_ws_intervals
                )
                lines.append(
                    "Adjusting the spatial weight into "
                    f"{ranges} alone would bring it into the result."
                )
            else:
                lines.append(
                    "No preference weighting alone brings it into the result; "
                    "enlarge k or adapt the query keywords."
                )
        return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class WhyNotExplanation:
    """Explanations for a full missing set plus refinement guidance."""

    query: SpatialKeywordQuery
    explanations: tuple[ObjectExplanation, ...]
    #: ``R(M, q)``: the quantity both penalty functions normalise by.
    worst_rank: int
    suggested_model: str

    def narrative(self) -> str:
        parts = [explanation.narrative() for explanation in self.explanations]
        parts.append(
            "Suggested refinement model to try first: "
            f"{self.suggested_model}."
        )
        return "\n\n".join(parts)


class ExplanationGenerator:
    """Builds :class:`WhyNotExplanation` objects from SetR-tree analysis.

    When no SetR-tree is supplied (e.g. the engine runs a non-set text
    model whose similarities the tree cannot bound) the counting queries
    fall back to database scans — same answers, no index pruning.
    """

    def __init__(
        self,
        scorer: Scorer,
        index: SetRTree | None = None,
        *,
        preference_adjuster: "object | None" = None,
    ) -> None:
        """
        ``preference_adjuster`` (a
        :class:`repro.whynot.preference.PreferenceAdjuster`) enables the
        weight-interval analysis in every explanation: for each missing
        object the intervals of the spatial weight that alone would
        revive it (Example 1's "how can the ranking function be
        adjusted?").
        """
        if index is not None and index.database is not scorer.database:
            raise ValueError("index and scorer must share the same database")
        self._scorer = scorer
        self._index = index
        self._preference_adjuster = preference_adjuster

    # ------------------------------------------------------------------
    def explain(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[SpatialObject],
        *,
        result: QueryResult | None = None,
    ) -> WhyNotExplanation:
        """Explain why every object in ``missing`` is absent from the result.

        ``result`` (the cached initial result) is recomputed when absent.
        Raises :class:`NotMissingError` when any object already appears.
        """
        if not missing:
            raise ValueError("the missing object set M must not be empty")
        if result is None:
            result = self._scorer.top_k(query)
        already = [obj.oid for obj in missing if result.contains(obj)]
        if already:
            raise NotMissingError(already)

        kth = result.entries[-1] if len(result) else None
        kth_breakdown = (
            ScoreBreakdown(score=kth.score, sdist=kth.sdist, tsim=kth.tsim)
            if kth is not None
            else None
        )

        explanations = []
        worst_rank = 0
        for obj in missing:
            rank = self._scorer.rank_of(obj, query)
            worst_rank = max(worst_rank, rank)
            breakdown = self._scorer.breakdown(obj, query)
            raw_distance = obj.loc.distance_to(query.loc)
            closer, more_similar = self._component_counts(
                query, raw_distance, breakdown.tsim
            )
            reason = self._classify(breakdown, kth_breakdown)
            intervals: tuple[tuple[float, float], ...] | None = None
            if self._preference_adjuster is not None:
                intervals = tuple(
                    self._preference_adjuster.viable_weight_intervals(query, obj)
                )
            explanations.append(
                ObjectExplanation(
                    obj=obj,
                    rank=rank,
                    k=query.k,
                    breakdown=breakdown,
                    kth_breakdown=kth_breakdown,
                    closer_objects=closer,
                    more_similar_objects=more_similar,
                    reason=reason,
                    viable_ws_intervals=intervals,
                )
            )

        return WhyNotExplanation(
            query=query,
            explanations=tuple(explanations),
            worst_rank=worst_rank,
            suggested_model=self._suggest_model(explanations),
        )

    # ------------------------------------------------------------------
    def _component_counts(
        self, query: SpatialKeywordQuery, raw_distance: float, tsim: float
    ) -> tuple[int, int]:
        """(#objects strictly closer, #objects strictly more similar)."""
        if self._index is not None:
            return (
                self._index.count_within_distance(query.loc, raw_distance),
                self._index.count_more_similar(query.doc, tsim),
            )
        closer = 0
        more_similar = 0
        for other in self._scorer.database:
            if other.loc.distance_to(query.loc) < raw_distance:
                closer += 1
            if self._scorer.tsim(other, query.doc) > tsim:
                more_similar += 1
        return closer, more_similar

    # ------------------------------------------------------------------
    @staticmethod
    def _classify(
        breakdown: ScoreBreakdown, kth: ScoreBreakdown | None
    ) -> MissingReason:
        """Component-wise comparison against the k-th returned object."""
        if kth is None:
            return MissingReason.BOTH
        spatially_behind = breakdown.sdist > kth.sdist
        textually_behind = breakdown.tsim < kth.tsim
        if spatially_behind and textually_behind:
            return MissingReason.BOTH
        if spatially_behind:
            return MissingReason.TOO_FAR
        if textually_behind:
            return MissingReason.LOW_RELEVANCE
        # Ahead (or tied) on both components yet ranked below the k-th
        # object is impossible under Eqn. (1); reaching here means the
        # object wins one component decisively while the weights favour
        # the other — the preference-imbalance case.
        return MissingReason.PREFERENCE_IMBALANCE

    @staticmethod
    def _suggest_model(explanations: Sequence[ObjectExplanation]) -> str:
        """Heuristic pointer to the refinement model likelier to be cheap.

        Keyword mismatches call for keyword adaption; spatial losses and
        imbalances call for preference adjustment (the GUI lets the user
        run either or both — Section 3.2).
        """
        textual = sum(
            1
            for explanation in explanations
            if explanation.reason
            in (MissingReason.LOW_RELEVANCE, MissingReason.BOTH)
        )
        if textual * 2 > len(explanations):
            return "keyword adaption"
        return "preference adjustment"
