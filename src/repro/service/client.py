"""A Python client for the YASK HTTP service.

Plays the role of the paper's browser front end (Section 3.2): it issues
the initial top-k query, keeps the returned ``session_id`` and sends the
follow-up why-not requests against it.  Transport is the standard
library's ``urllib`` so the client works wherever the server does.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping, Sequence
from urllib import error, request
from urllib.parse import quote

__all__ = ["YaskClientError", "YaskClient"]


class YaskClientError(RuntimeError):
    """An error response from the YASK server."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class YaskClient:
    """Thin JSON-over-HTTP client mirroring the server's endpoints."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self._base_url = base_url.rstrip("/")
        self._timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _call(
        self,
        method: str,
        path: str,
        payload: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        url = f"{self._base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = request.Request(url, data=data, headers=headers, method=method)
        try:
            with request.urlopen(req, timeout=self._timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get(
                    "error", exc.reason
                )
            except Exception:  # body not JSON
                message = str(exc.reason)
            raise YaskClientError(exc.code, message) from None
        except error.URLError as exc:
            raise YaskClientError(0, f"connection failed: {exc.reason}") from None

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self._call("GET", "/healthz")

    def objects(self) -> list[dict[str, Any]]:
        """All objects — the grey markers of the map panel (Fig. 3)."""
        return self._call("GET", "/api/objects")["objects"]

    def get_object(self, reference: int | str) -> dict[str, Any]:
        """One object by id or name; :class:`YaskClientError` 404 if unknown."""
        return self._call("GET", f"/api/objects/{quote(str(reference))}")[
            "object"
        ]

    # ------------------------------------------------------------------
    # Live mutation
    # ------------------------------------------------------------------
    def insert_objects(
        self, objects: Sequence[Mapping[str, Any]]
    ) -> dict[str, Any]:
        """Ingest new objects: ``[{"oid", "x", "y", "keywords", "name"?}]``.

        Returns the mutation report: generation, per-op counts, kernel
        column occupancy and the scoped cache-invalidation tally
        (``cache_invalidation.kept`` is the number of warm results that
        provably survived the write).
        """
        return self._call(
            "POST", "/api/objects", {"objects": [dict(obj) for obj in objects]}
        )

    def delete_object(self, reference: int | str) -> dict[str, Any]:
        """Retire one object by id or name; returns the mutation report."""
        return self._call(
            "DELETE", f"/api/objects/{quote(str(reference))}"
        )

    def mutate(
        self, mutations: Sequence[Mapping[str, Any]]
    ) -> dict[str, Any]:
        """Apply a mixed batch: ``[{"op": "insert"|"update"|"delete", ...}]``.

        Inserts/updates carry the object fields inline; deletes carry
        ``"oid"``.  The batch applies atomically — queries served
        concurrently see either all of it or none of it.
        """
        return self._call(
            "POST",
            "/api/mutations",
            {"mutations": [dict(mutation) for mutation in mutations]},
        )

    def mutation_stats(self) -> dict[str, Any]:
        """The live-mutation tier's counters (generation, ops, kernel)."""
        return self._call("GET", "/api/stats")["mutations"]

    def query(
        self,
        x: float,
        y: float,
        keywords: Iterable[str],
        k: int,
        *,
        ws: float | None = None,
        min_generation: int | None = None,
    ) -> dict[str, Any]:
        """Issue an initial top-k query; response carries ``session_id``.

        ``min_generation`` is the read-your-writes consistency token:
        pass the ``generation`` a mutation response acknowledged and a
        follower that has not yet replayed that batch answers a
        structured 503 instead of stale data.
        """
        payload: dict[str, Any] = {
            "x": x,
            "y": y,
            "keywords": sorted(set(keywords)),
            "k": k,
        }
        if ws is not None:
            payload["ws"] = ws
        if min_generation is not None:
            payload["min_generation"] = min_generation
        return self._call("POST", "/api/query", payload)

    def query_batch(
        self,
        queries: Sequence[Mapping[str, Any]],
        *,
        min_generation: int | None = None,
    ) -> dict[str, Any]:
        """Execute many top-k queries in one round trip (stateless).

        Each element is a single-query payload — ``{"x", "y",
        "keywords", "k"}`` plus optional ``"ws"`` — and the response
        carries one entry per query, in order, with ``cached`` marking
        results the server cache (or in-flight dedup) served without a
        fresh execution.  ``min_generation`` applies to the whole
        batch (see :meth:`query`).
        """
        payload: dict[str, Any] = {
            "queries": [dict(q) for q in queries]
        }
        if min_generation is not None:
            payload["min_generation"] = min_generation
        return self._call("POST", "/api/query/batch", payload)

    def stats(self) -> dict[str, Any]:
        """The top-k executor's cache counters (hits, misses, ...)."""
        return self._call("GET", "/api/stats")["cache"]

    def whynot_stats(self) -> dict[str, Any]:
        """The why-not executor's cache counters (hits, misses, ...)."""
        return self._call("GET", "/api/stats")["whynot_cache"]

    def durability_stats(self) -> dict[str, Any]:
        """The durability tier's state — WAL/snapshot on a primary
        (``role: "primary"``), replay cursor on a follower
        (``role: "follower"``), or ``{"enabled": False}`` when the
        server runs without a write-ahead log.
        """
        return self._call("GET", "/api/stats")["durability"]

    def whynot_batch(
        self,
        questions: Sequence[Mapping[str, Any]],
        *,
        min_generation: int | None = None,
    ) -> dict[str, Any]:
        """Answer many why-not questions in one round trip (stateless).

        Each element carries its own query plus question parameters —
        ``{"x", "y", "keywords", "k", "missing"}`` with optional
        ``"ws"``, ``"model"`` (``full``/``explain``/``preference``/
        ``keywords``/``combined``, default ``full``) and ``"lambda"``.
        The response carries one entry per question, in order;
        ``cached`` marks answers the why-not cache (or in-flight dedup)
        served without recomputing, ``topk_source`` reports where a
        freshly computed answer's initial top-k result came from, and an
        ill-posed question yields ``{"error": ...}`` for its entry
        without failing the rest of the batch.  ``min_generation``
        applies to the whole batch (see :meth:`query`).
        """
        payload: dict[str, Any] = {
            "questions": [dict(question) for question in questions]
        }
        if min_generation is not None:
            payload["min_generation"] = min_generation
        return self._call("POST", "/api/whynot/batch", payload)

    def explain(
        self, session_id: str, missing: Sequence[int | str]
    ) -> dict[str, Any]:
        return self._call(
            "POST",
            "/api/whynot/explain",
            {"session_id": session_id, "missing": list(missing)},
        )

    def refine_preference(
        self,
        session_id: str,
        missing: Sequence[int | str],
        *,
        lam: float = 0.5,
    ) -> dict[str, Any]:
        return self._call(
            "POST",
            "/api/whynot/preference",
            {"session_id": session_id, "missing": list(missing), "lambda": lam},
        )

    def refine_keywords(
        self,
        session_id: str,
        missing: Sequence[int | str],
        *,
        lam: float = 0.5,
    ) -> dict[str, Any]:
        return self._call(
            "POST",
            "/api/whynot/keywords",
            {"session_id": session_id, "missing": list(missing), "lambda": lam},
        )

    def refine_combined(
        self,
        session_id: str,
        missing: Sequence[int | str],
        *,
        lam: float = 0.5,
    ) -> dict[str, Any]:
        """Both refinement functions applied together (Section 3.2)."""
        return self._call(
            "POST",
            "/api/whynot/combined",
            {"session_id": session_id, "missing": list(missing), "lambda": lam},
        )

    def query_log(self, session_id: str) -> list[dict[str, Any]]:
        """The query-log panel of Fig. 4 (Panel 5)."""
        return self._call("GET", f"/api/log?session_id={session_id}")["entries"]

    def close_session(self, session_id: str) -> bool:
        response = self._call(
            "POST", "/api/session/close", {"session_id": session_id}
        )
        return bool(response.get("dropped"))
