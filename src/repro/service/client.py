"""A Python client for the YASK HTTP service.

Plays the role of the paper's browser front end (Section 3.2): it issues
the initial top-k query, keeps the returned ``session_id`` and sends the
follow-up why-not requests against it.  Transport is the standard
library's ``urllib`` so the client works wherever the server does.

Resilience: every request carries a socket timeout, retriable failures
(load-shedding/degraded-mode 503s, and connection errors on idempotent
requests) are retried with jittered exponential backoff honouring the
server's ``Retry-After``, and mutations become safely retriable by
passing a ``batch_token`` — the server deduplicates a retry of an
already-committed batch through the WAL generation record and returns
the original generation instead of applying it twice.
"""

from __future__ import annotations

import json
import random
import time
from typing import Any, Callable, Iterable, Mapping, Sequence
from urllib import error, request
from urllib.parse import quote

__all__ = ["YaskClientError", "YaskClient"]


class YaskClientError(RuntimeError):
    """An error response from the YASK server.

    ``status`` is the HTTP status (0 for a connection failure) and
    ``retry_after`` the server's ``Retry-After`` advice in seconds,
    when it sent one.
    """

    def __init__(
        self,
        status: int,
        message: str,
        *,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class YaskClient:
    """Thin JSON-over-HTTP client mirroring the server's endpoints.

    Parameters
    ----------
    base_url:
        The server endpoint, e.g. ``http://127.0.0.1:8080``.
    timeout:
        Socket timeout (seconds) for every request — a hung server
        surfaces as a connection error, never an indefinite block.
    retries:
        Extra attempts for retriable failures: a 503 (the server says
        the request was *not* applied — load shedding, breaker-open
        read-only mode, follower lag) is always retriable; a connection
        error is retried only for idempotent requests (reads, and
        mutations carrying a ``batch_token``).
    backoff_ms / max_backoff_ms:
        Jittered exponential backoff base and cap.  The server's
        ``Retry-After`` header, when present, overrides the computed
        delay.
    sleep / rng:
        Injectable for deterministic tests: ``sleep`` replaces
        :func:`time.sleep`, ``rng`` supplies the backoff jitter.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        retries: int = 2,
        backoff_ms: float = 100.0,
        max_backoff_ms: float = 5000.0,
        sleep: Callable[[float], None] | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if backoff_ms <= 0 or max_backoff_ms < backoff_ms:
            raise ValueError(
                "backoff_ms must be positive and at most max_backoff_ms"
            )
        self._base_url = base_url.rstrip("/")
        self._timeout = timeout
        self._retries = retries
        self._backoff_ms = backoff_ms
        self._max_backoff_ms = max_backoff_ms
        self._sleep = sleep if sleep is not None else time.sleep
        self._rng = rng if rng is not None else random.Random()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _call_once(
        self,
        method: str,
        path: str,
        payload: Mapping[str, Any] | None = None,
        accept_statuses: frozenset[int] = frozenset(),
    ) -> dict[str, Any]:
        url = f"{self._base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = request.Request(url, data=data, headers=headers, method=method)
        try:
            with request.urlopen(req, timeout=self._timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except error.HTTPError as exc:
            raw = exc.read()
            if exc.code in accept_statuses:
                return json.loads(raw.decode("utf-8"))
            try:
                message = json.loads(raw.decode("utf-8")).get(
                    "error", exc.reason
                )
            except Exception:  # body not JSON
                message = str(exc.reason)
            retry_after: float | None = None
            advised = exc.headers.get("Retry-After") if exc.headers else None
            if advised is not None:
                try:
                    retry_after = float(advised)
                except ValueError:
                    retry_after = None
            raise YaskClientError(
                exc.code, message, retry_after=retry_after
            ) from None
        except error.URLError as exc:
            raise YaskClientError(0, f"connection failed: {exc.reason}") from None
        except TimeoutError:
            raise YaskClientError(0, "connection failed: socket timeout") from None

    def _backoff_seconds(self, attempt: int) -> float:
        """Full-jitter exponential backoff for retry ``attempt`` (0-based)."""
        ceiling = min(
            self._max_backoff_ms, self._backoff_ms * (2.0**attempt)
        )
        return (self._rng.uniform(ceiling / 2.0, ceiling)) / 1000.0

    def _call(
        self,
        method: str,
        path: str,
        payload: Mapping[str, Any] | None = None,
        *,
        idempotent: bool = True,
        accept_statuses: frozenset[int] = frozenset(),
    ) -> dict[str, Any]:
        """One logical request, with the retry policy applied.

        A 503 means the server did *not* apply the request (shed,
        breaker-open, follower lag) and is always retriable.  A
        connection failure leaves the outcome unknown, so it is retried
        only when ``idempotent`` — reads, and mutations whose
        ``batch_token`` makes a double-apply impossible.
        """
        attempt = 0
        while True:
            try:
                return self._call_once(method, path, payload, accept_statuses)
            except YaskClientError as exc:
                retriable = exc.status == 503 or (
                    exc.status == 0 and idempotent
                )
                if not retriable or attempt >= self._retries:
                    raise
                delay = (
                    exc.retry_after
                    if exc.retry_after is not None
                    else self._backoff_seconds(attempt)
                )
                self._sleep(delay)
                attempt += 1

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self._call("GET", "/healthz")

    def health_live(self) -> dict[str, Any]:
        """Liveness probe: answers ``{"status": "ok"}`` while the
        process serves HTTP at all, regardless of degraded state."""
        return self._call("GET", "/api/health/live")

    def health_ready(self) -> dict[str, Any]:
        """Readiness probe: the full readiness body, whether the server
        answered 200 (``status: "ok"``) or 503 (``status: "degraded"``,
        e.g. the WAL circuit breaker is open).  Never retried — a probe
        wants the current truth, not an eventual success."""
        return self._call_once(
            "GET", "/api/health/ready", accept_statuses=frozenset({503})
        )

    def resilience_stats(self) -> dict[str, Any]:
        """The resilience section of ``/api/stats`` — in-flight gauge,
        WAL circuit breaker, and the advertised read-only flag."""
        return self._call("GET", "/api/stats")["resilience"]

    def objects(self) -> list[dict[str, Any]]:
        """All objects — the grey markers of the map panel (Fig. 3)."""
        return self._call("GET", "/api/objects")["objects"]

    def get_object(self, reference: int | str) -> dict[str, Any]:
        """One object by id or name; :class:`YaskClientError` 404 if unknown."""
        return self._call("GET", f"/api/objects/{quote(str(reference))}")[
            "object"
        ]

    # ------------------------------------------------------------------
    # Live mutation
    # ------------------------------------------------------------------
    def insert_objects(
        self,
        objects: Sequence[Mapping[str, Any]],
        *,
        batch_token: str | None = None,
    ) -> dict[str, Any]:
        """Ingest new objects: ``[{"oid", "x", "y", "keywords", "name"?}]``.

        Returns the mutation report: generation, per-op counts, kernel
        column occupancy and the answer-maintenance tallies —
        ``cache_maintenance`` breaks the patch-on-write pass down into
        kept / patched / dropped / rescans (and the ``linked_*``
        why-not equivalents); ``cache_invalidation`` summarises the
        same pass in the legacy dropped/kept shape
        (``cache_invalidation.kept`` is the number of warm results that
        provably survived the write).  Passing a ``batch_token`` (any
        unique string) makes the request idempotent: a retry of an
        already-committed batch is deduplicated server-side and
        acknowledges the original generation with
        ``deduplicated: true`` — so connection failures become
        retriable.
        """
        payload: dict[str, Any] = {
            "objects": [dict(obj) for obj in objects]
        }
        if batch_token is not None:
            payload["batch_token"] = batch_token
        return self._call(
            "POST",
            "/api/objects",
            payload,
            idempotent=batch_token is not None,
        )

    def delete_object(self, reference: int | str) -> dict[str, Any]:
        """Retire one object by id or name; returns the mutation report.

        Naturally idempotent — deleting an absent object is a no-op —
        so connection failures are retried.
        """
        return self._call(
            "DELETE", f"/api/objects/{quote(str(reference))}"
        )

    def mutate(
        self,
        mutations: Sequence[Mapping[str, Any]],
        *,
        batch_token: str | None = None,
    ) -> dict[str, Any]:
        """Apply a mixed batch: ``[{"op": "insert"|"update"|"delete", ...}]``.

        Inserts/updates carry the object fields inline; deletes carry
        ``"oid"``.  The batch applies atomically — queries served
        concurrently see either all of it or none of it.  A
        ``batch_token`` makes the batch idempotent and hence safely
        retriable (see :meth:`insert_objects`).
        """
        payload: dict[str, Any] = {
            "mutations": [dict(mutation) for mutation in mutations]
        }
        if batch_token is not None:
            payload["batch_token"] = batch_token
        return self._call(
            "POST",
            "/api/mutations",
            payload,
            idempotent=batch_token is not None,
        )

    def mutation_stats(self) -> dict[str, Any]:
        """The live-mutation tier's counters (generation, ops, kernel)."""
        return self._call("GET", "/api/stats")["mutations"]

    def query(
        self,
        x: float,
        y: float,
        keywords: Iterable[str],
        k: int,
        *,
        ws: float | None = None,
        min_generation: int | None = None,
        timeout_ms: float | None = None,
    ) -> dict[str, Any]:
        """Issue an initial top-k query; response carries ``session_id``.

        ``min_generation`` is the read-your-writes consistency token:
        pass the ``generation`` a mutation response acknowledged and a
        follower that has not yet replayed that batch answers a
        structured 503 instead of stale data.  ``timeout_ms`` sets a
        server-side deadline: shards still unanswered when it expires
        are skipped and the response carries a ``degraded`` envelope
        describing exactly what was omitted.
        """
        payload: dict[str, Any] = {
            "x": x,
            "y": y,
            "keywords": sorted(set(keywords)),
            "k": k,
        }
        if ws is not None:
            payload["ws"] = ws
        if min_generation is not None:
            payload["min_generation"] = min_generation
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        return self._call("POST", "/api/query", payload)

    def query_batch(
        self,
        queries: Sequence[Mapping[str, Any]],
        *,
        min_generation: int | None = None,
        timeout_ms: float | None = None,
    ) -> dict[str, Any]:
        """Execute many top-k queries in one round trip (stateless).

        Each element is a single-query payload — ``{"x", "y",
        "keywords", "k"}`` plus optional ``"ws"`` — and the response
        carries one entry per query, in order, with ``cached`` marking
        results the server cache (or in-flight dedup) served without a
        fresh execution.  ``min_generation`` applies to the whole
        batch (see :meth:`query`); ``timeout_ms`` is a shared budget
        for the whole batch.
        """
        payload: dict[str, Any] = {
            "queries": [dict(q) for q in queries]
        }
        if min_generation is not None:
            payload["min_generation"] = min_generation
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        return self._call("POST", "/api/query/batch", payload)

    def stats(self) -> dict[str, Any]:
        """The top-k executor's cache counters (hits, misses, ...)."""
        return self._call("GET", "/api/stats")["cache"]

    def whynot_stats(self) -> dict[str, Any]:
        """The why-not executor's cache counters (hits, misses, ...)."""
        return self._call("GET", "/api/stats")["whynot_cache"]

    def durability_stats(self) -> dict[str, Any]:
        """The durability tier's state — WAL/snapshot on a primary
        (``role: "primary"``), replay cursor on a follower
        (``role: "follower"``), or ``{"enabled": False}`` when the
        server runs without a write-ahead log.
        """
        return self._call("GET", "/api/stats")["durability"]

    def whynot_batch(
        self,
        questions: Sequence[Mapping[str, Any]],
        *,
        min_generation: int | None = None,
    ) -> dict[str, Any]:
        """Answer many why-not questions in one round trip (stateless).

        Each element carries its own query plus question parameters —
        ``{"x", "y", "keywords", "k", "missing"}`` with optional
        ``"ws"``, ``"model"`` (``full``/``explain``/``preference``/
        ``keywords``/``combined``, default ``full``) and ``"lambda"``.
        The response carries one entry per question, in order;
        ``cached`` marks answers the why-not cache (or in-flight dedup)
        served without recomputing, ``topk_source`` reports where a
        freshly computed answer's initial top-k result came from, and an
        ill-posed question yields ``{"error": ...}`` for its entry
        without failing the rest of the batch.  ``min_generation``
        applies to the whole batch (see :meth:`query`).
        """
        payload: dict[str, Any] = {
            "questions": [dict(question) for question in questions]
        }
        if min_generation is not None:
            payload["min_generation"] = min_generation
        return self._call("POST", "/api/whynot/batch", payload)

    def explain(
        self,
        session_id: str,
        missing: Sequence[int | str],
        *,
        timeout_ms: float | None = None,
    ) -> dict[str, Any]:
        """Why-not explanation for ``missing`` against the session's
        query.  With ``timeout_ms``, an answer that cannot be computed
        exactly within the budget comes back as a ``degraded`` envelope
        instead of a partial (and possibly wrong) explanation.
        """
        payload: dict[str, Any] = {
            "session_id": session_id,
            "missing": list(missing),
        }
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        return self._call("POST", "/api/whynot/explain", payload)

    def refine_preference(
        self,
        session_id: str,
        missing: Sequence[int | str],
        *,
        lam: float = 0.5,
        timeout_ms: float | None = None,
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "session_id": session_id,
            "missing": list(missing),
            "lambda": lam,
        }
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        return self._call("POST", "/api/whynot/preference", payload)

    def refine_keywords(
        self,
        session_id: str,
        missing: Sequence[int | str],
        *,
        lam: float = 0.5,
        timeout_ms: float | None = None,
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "session_id": session_id,
            "missing": list(missing),
            "lambda": lam,
        }
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        return self._call("POST", "/api/whynot/keywords", payload)

    def refine_combined(
        self,
        session_id: str,
        missing: Sequence[int | str],
        *,
        lam: float = 0.5,
        timeout_ms: float | None = None,
    ) -> dict[str, Any]:
        """Both refinement functions applied together (Section 3.2)."""
        payload: dict[str, Any] = {
            "session_id": session_id,
            "missing": list(missing),
            "lambda": lam,
        }
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        return self._call("POST", "/api/whynot/combined", payload)

    def query_log(self, session_id: str) -> list[dict[str, Any]]:
        """The query-log panel of Fig. 4 (Panel 5)."""
        return self._call("GET", f"/api/log?session_id={session_id}")["entries"]

    def close_session(self, session_id: str) -> bool:
        response = self._call(
            "POST", "/api/session/close", {"session_id": session_id}
        )
        return bool(response.get("dropped"))
