"""Server-side sessions and the query log.

Section 3.3 of the paper: "The server caches users' initial spatial
keyword queries until users give up asking follow-up 'why-not'
questions."  A :class:`Session` is one such cached initial query (plus
its result), created when a top-k query arrives and dropped explicitly
or by LRU eviction.  Since the executor tier arrived, the session is
the *addressing* mechanism for follow-ups — a ``session_id`` names the
initial query a why-not question refers to — while recomputation
avoidance is the job of the shared
:class:`~repro.service.executor.QueryExecutor` /
:class:`~repro.service.executor.WhyNotExecutor` caches, which span
sessions: two users asking the same why-not question share one cached
answer.

Section 4 / Fig. 4 (Panel 5): "users can find the detailed parameter
settings for the refined query, its penalty against users' initial
queries, as well as the query response time" — :class:`QueryLog` records
exactly those fields for every request handled in a session, plus the
executor-tier provenance (``cached``) of each response.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro import concurrency
from repro.core.query import QueryResult, SpatialKeywordQuery

__all__ = ["LogEntry", "QueryLog", "Session", "SessionManager"]


@dataclass(frozen=True, slots=True)
class LogEntry:
    """One line of the demonstration's query-log panel."""

    sequence: int
    kind: str
    params: Mapping[str, object]
    response_ms: float
    penalty: float | None = None
    #: True when the response was served by the QueryExecutor's result
    #: cache (or piggy-backed on an identical in-flight execution)
    #: instead of a fresh index traversal.
    cached: bool = False

    def describe(self) -> str:
        parts = [f"[{self.sequence}] {self.kind}"]
        for key, value in self.params.items():
            parts.append(f"{key}={value}")
        if self.penalty is not None:
            parts.append(f"penalty={self.penalty:.4f}")
        parts.append(f"time={self.response_ms:.2f}ms")
        if self.cached:
            parts.append("(cache hit)")
        return " ".join(parts)


class QueryLog:
    """Append-only log of requests within one session."""

    def __init__(self) -> None:
        self._entries: list[LogEntry] = []
        self._counter = itertools.count(1)
        self._lock = concurrency.ordered_lock("session.log", concurrency.LEVEL_LEAF)

    def record(
        self,
        kind: str,
        params: Mapping[str, object],
        response_ms: float,
        *,
        penalty: float | None = None,
        cached: bool = False,
    ) -> LogEntry:
        with self._lock:
            entry = LogEntry(
                sequence=next(self._counter),
                kind=kind,
                params=dict(params),
                response_ms=response_ms,
                penalty=penalty,
                cached=cached,
            )
            self._entries.append(entry)
            return entry

    @property
    def entries(self) -> tuple[LogEntry, ...]:
        with self._lock:
            return tuple(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self.entries)

    def describe(self) -> str:
        return "\n".join(entry.describe() for entry in self.entries)


@dataclass(slots=True)
class Session:
    """A cached initial query with its result and per-session log."""

    session_id: str
    initial_query: SpatialKeywordQuery
    initial_result: QueryResult
    log: QueryLog = field(default_factory=QueryLog)


class SessionManager:
    """LRU-bounded registry of active sessions.

    Thread-safe: the HTTP server handles requests from a thread pool.
    """

    def __init__(self, *, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._capacity = capacity
        self._sessions: "OrderedDict[str, Session]" = OrderedDict()
        self._lock = concurrency.ordered_lock(
            "session.manager", concurrency.LEVEL_LEAF
        )
        self._counter = itertools.count(1)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def create(
        self, query: SpatialKeywordQuery, result: QueryResult
    ) -> Session:
        """Cache an initial query, evicting the stalest session if full."""
        with self._lock:
            session_id = f"s{next(self._counter):06d}"
            session = Session(
                session_id=session_id, initial_query=query, initial_result=result
            )
            self._sessions[session_id] = session
            while len(self._sessions) > self._capacity:
                self._sessions.popitem(last=False)
            return session

    def get(self, session_id: str) -> Session:
        """Fetch a session, refreshing its LRU position.

        Raises ``KeyError`` for unknown/expired ids — the client must
        re-issue the initial query ("until users give up asking").
        """
        with self._lock:
            try:
                session = self._sessions.pop(session_id)
            except KeyError:
                raise KeyError(
                    f"unknown or expired session {session_id!r}"
                ) from None
            self._sessions[session_id] = session
            return session

    def drop(self, session_id: str) -> bool:
        """Forget a session (the user gave up asking why-not questions)."""
        with self._lock:
            return self._sessions.pop(session_id, None) is not None

    def active_ids(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._sessions)
