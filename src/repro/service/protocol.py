"""JSON wire protocol of the YASK service.

Section 3.2: "All queries are sent to the server using the standard
HTTP post method."  This module defines the (de)serialisation between
the engine's value objects and the JSON payloads exchanged with the
client — one function pair per message type, kept dependency-free so
the protocol can be reused by non-HTTP transports (the CLI pipes the
same dicts).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.core.geometry import Point
from repro.core.objects import SpatialObject
from repro.core.query import (
    DEFAULT_WEIGHTS,
    QueryResult,
    RankedObject,
    SpatialKeywordQuery,
    Weights,
)
from repro.whynot.combined import CombinedRefinement
from repro.whynot.explanation import ObjectExplanation, WhyNotExplanation
from repro.whynot.keyword import KeywordRefinement
from repro.whynot.preference import PreferenceRefinement

if TYPE_CHECKING:  # imported lazily to keep the protocol transport-free
    from repro.service.executor import (
        BatchExecution,
        Execution,
        WhyNotBatchExecution,
        WhyNotExecution,
        WhyNotQuestion,
    )
    from repro.whynot.engine import WhyNotAnswer

__all__ = [
    "MAX_BATCH_MUTATIONS",
    "MAX_BATCH_QUERIES",
    "MAX_BATCH_QUESTIONS",
    "MAX_BATCH_TOKEN_LENGTH",
    "ProtocolError",
    "batch_token_from_dict",
    "min_generation_from_dict",
    "timeout_ms_from_dict",
    "mutation_from_dict",
    "mutation_to_dict",
    "mutations_from_dict",
    "spatial_object_from_dict",
    "query_to_dict",
    "query_from_dict",
    "batch_queries_from_dict",
    "missing_refs_from_dict",
    "lambda_from_dict",
    "whynot_question_from_dict",
    "batch_whynot_questions_from_dict",
    "object_to_dict",
    "result_to_dict",
    "execution_to_dict",
    "batch_execution_to_dict",
    "explanation_to_dict",
    "preference_refinement_to_dict",
    "keyword_refinement_to_dict",
    "combined_refinement_to_dict",
    "whynot_answer_to_dict",
    "whynot_value_to_dict",
    "whynot_execution_to_dict",
    "whynot_batch_execution_to_dict",
]

#: Defensive cap on the number of queries in one batch request; keeps a
#: single request from monopolising the server's worker pool.
MAX_BATCH_QUERIES = 256

#: Cap for why-not batches.  A why-not answer costs an order of
#: magnitude more than the top-k query it explains, so the cap is
#: proportionally tighter than :data:`MAX_BATCH_QUERIES`.
MAX_BATCH_QUESTIONS = 64

#: Cap for mutation batches (``POST /api/mutations``).  Mutations hold
#: the engine's exclusive write lock while they apply, so one request
#: must not stall the read path for long.
MAX_BATCH_MUTATIONS = 256


class ProtocolError(ValueError):
    """A malformed request payload."""


def _require(payload: Mapping[str, Any], key: str) -> Any:
    try:
        return payload[key]
    except KeyError:
        raise ProtocolError(f"missing required field {key!r}") from None


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
def query_to_dict(query: SpatialKeywordQuery) -> dict[str, Any]:
    return {
        "x": query.loc.x,
        "y": query.loc.y,
        "keywords": sorted(query.doc),
        "k": query.k,
        "ws": query.weights.ws,
        "wt": query.weights.wt,
    }


def query_from_dict(
    payload: Mapping[str, Any], *, default_weights: Weights = DEFAULT_WEIGHTS
) -> SpatialKeywordQuery:
    """Parse a query request; weights are optional (server parameter)."""
    try:
        loc = Point(float(_require(payload, "x")), float(_require(payload, "y")))
        keywords = _require(payload, "keywords")
        if isinstance(keywords, str) or not hasattr(keywords, "__iter__"):
            raise ProtocolError("'keywords' must be a list of strings")
        k = int(_require(payload, "k"))
        if "ws" in payload:
            ws = float(payload["ws"])
            wt = float(payload.get("wt", 1.0 - ws))
            weights = Weights(ws, wt)
        else:
            weights = default_weights
        return SpatialKeywordQuery(
            loc=loc, doc=frozenset(str(kw) for kw in keywords), k=k, weights=weights
        )
    except ProtocolError:
        raise
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed query payload: {exc}") from None


def batch_queries_from_dict(
    payload: Mapping[str, Any],
    *,
    default_weights: Weights = DEFAULT_WEIGHTS,
    max_queries: int = MAX_BATCH_QUERIES,
) -> list[SpatialKeywordQuery]:
    """Parse a ``POST /api/query/batch`` body: ``{"queries": [...]}``.

    Each element uses the same shape as a single ``/api/query`` body; a
    malformed element reports its index so clients can repair the batch.
    """
    raw = _require(payload, "queries")
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("'queries' must be a non-empty list of query objects")
    if len(raw) > max_queries:
        raise ProtocolError(
            f"batch too large: {len(raw)} queries exceeds the cap of {max_queries}"
        )
    queries: list[SpatialKeywordQuery] = []
    for index, item in enumerate(raw):
        if not isinstance(item, Mapping):
            raise ProtocolError(f"queries[{index}] must be a JSON object")
        try:
            queries.append(query_from_dict(item, default_weights=default_weights))
        except ProtocolError as exc:
            raise ProtocolError(f"queries[{index}]: {exc}") from None
    return queries


# ----------------------------------------------------------------------
# Mutations (live insert / update / delete)
# ----------------------------------------------------------------------
def spatial_object_from_dict(payload: Mapping[str, Any]) -> SpatialObject:
    """Parse an object payload: ``{"oid", "x", "y", "keywords", "name"?}``.

    The keyword list may be empty (an object can carry no text), but it
    must be present — an ingest endpoint silently defaulting documents
    would mask client bugs.
    """
    try:
        oid = int(_require(payload, "oid"))
        loc = Point(float(_require(payload, "x")), float(_require(payload, "y")))
        keywords = _require(payload, "keywords")
        if isinstance(keywords, str) or not hasattr(keywords, "__iter__"):
            raise ProtocolError("'keywords' must be a list of strings")
        name = payload.get("name")
        if name is not None and not isinstance(name, str):
            raise ProtocolError("'name' must be a string when present")
        return SpatialObject(
            oid=oid,
            loc=loc,
            doc=frozenset(str(kw) for kw in keywords),
            name=name,
        )
    except ProtocolError:
        raise
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed object payload: {exc}") from None


def mutation_from_dict(payload: Mapping[str, Any]) -> "Mutation":
    """Parse one mutation: ``{"op": "insert"|"update"|"delete", ...}``.

    Inserts and updates carry the object fields inline; deletes carry
    only ``"oid"``.
    """
    from repro.core.mutations import Mutation, MutationError

    op = payload.get("op")
    if op not in ("insert", "update", "delete"):
        raise ProtocolError(
            "'op' must be one of 'insert', 'update', 'delete'"
        )
    try:
        if op == "delete":
            return Mutation.delete(int(_require(payload, "oid")))
        obj = spatial_object_from_dict(payload)
        return Mutation.insert(obj) if op == "insert" else Mutation.update(obj)
    except MutationError as exc:
        raise ProtocolError(str(exc)) from None
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed mutation payload: {exc}") from None


def mutation_to_dict(mutation: "Mutation") -> dict[str, Any]:
    """Serialise one mutation (inverse of :func:`mutation_from_dict`).

    The write-ahead log records batches in this wire shape, so a replay
    parses them with the exact same code path a client request takes.
    Floats survive the JSON round trip bit-for-bit (``repr`` shortest
    round-trip), which is what makes recovered score floats identical.
    """
    if mutation.kind == "delete":
        return {"op": "delete", "oid": mutation.oid}
    obj = mutation.obj
    payload: dict[str, Any] = {
        "op": mutation.kind,
        "oid": obj.oid,
        "x": obj.loc.x,
        "y": obj.loc.y,
        "keywords": sorted(obj.doc),
    }
    if obj.name is not None:
        payload["name"] = obj.name
    return payload


def min_generation_from_dict(payload: Mapping[str, Any]) -> int | None:
    """Parse the optional ``min_generation`` consistency token.

    A client that saw the primary acknowledge generation ``g`` sends
    ``"min_generation": g`` on reads to refuse anything staler; absent
    means "any generation is fine".
    """
    raw = payload.get("min_generation")
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise ProtocolError("'min_generation' must be a non-negative integer")
    if raw < 0:
        raise ProtocolError("'min_generation' must be a non-negative integer")
    return raw


#: Defensive cap on idempotency-token length: the token is persisted in
#: every WAL record that carries it, so an adversarially long token must
#: not bloat the log.
MAX_BATCH_TOKEN_LENGTH = 128


def timeout_ms_from_dict(payload: Mapping[str, Any]) -> float | None:
    """Parse the optional ``timeout_ms`` request budget (positive number).

    Absent (or null) means no deadline — the request runs to exact
    completion however long that takes.
    """
    raw = payload.get("timeout_ms")
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise ProtocolError("'timeout_ms' must be a positive number")
    budget = float(raw)
    if not budget > 0.0:
        raise ProtocolError("'timeout_ms' must be a positive number")
    return budget


def batch_token_from_dict(payload: Mapping[str, Any]) -> str | None:
    """Parse the optional ``batch_token`` idempotency token.

    A non-empty string of at most :data:`MAX_BATCH_TOKEN_LENGTH`
    characters; absent means the mutation batch is not retriable.
    """
    raw = payload.get("batch_token")
    if raw is None:
        return None
    if not isinstance(raw, str) or not raw:
        raise ProtocolError("'batch_token' must be a non-empty string")
    if len(raw) > MAX_BATCH_TOKEN_LENGTH:
        raise ProtocolError(
            f"'batch_token' exceeds {MAX_BATCH_TOKEN_LENGTH} characters"
        )
    return raw


def mutations_from_dict(
    payload: Mapping[str, Any],
    *,
    max_mutations: int | None = MAX_BATCH_MUTATIONS,
) -> "list[Mutation]":
    """Parse a ``POST /api/mutations`` body: ``{"mutations": [...]}``.

    ``max_mutations=None`` disables the batch cap — the CLI's local
    workload files are not subject to the HTTP write-lock budget.
    """
    raw = _require(payload, "mutations")
    if not isinstance(raw, list) or not raw:
        raise ProtocolError(
            "'mutations' must be a non-empty list of mutation objects"
        )
    if max_mutations is not None and len(raw) > max_mutations:
        raise ProtocolError(
            f"batch too large: {len(raw)} mutations exceeds the cap of "
            f"{max_mutations}"
        )
    mutations = []
    for index, item in enumerate(raw):
        if not isinstance(item, Mapping):
            raise ProtocolError(f"mutations[{index}] must be a JSON object")
        try:
            mutations.append(mutation_from_dict(item))
        except ProtocolError as exc:
            raise ProtocolError(f"mutations[{index}]: {exc}") from None
    return mutations


# ----------------------------------------------------------------------
# Why-not questions
# ----------------------------------------------------------------------
def missing_refs_from_dict(payload: Mapping[str, Any]) -> list[int | str]:
    """Parse the ``"missing"`` field: a non-empty list of ids or names."""
    missing = payload.get("missing")
    if not isinstance(missing, list) or not missing:
        raise ProtocolError("'missing' must be a non-empty list of ids or names")
    refs: list[int | str] = []
    for item in missing:
        if isinstance(item, bool) or not isinstance(item, (int, str)):
            raise ProtocolError("'missing' entries must be object ids or names")
        refs.append(item)
    return refs


def lambda_from_dict(payload: Mapping[str, Any]) -> float:
    """Parse the optional ``"lambda"`` field (default 0.5, range [0, 1])."""
    raw = payload.get("lambda", 0.5)
    if isinstance(raw, bool) or not isinstance(raw, (int, float, str)):
        raise ProtocolError("'lambda' must be a number")
    try:
        lam = float(raw)
    except (TypeError, ValueError):
        raise ProtocolError("'lambda' must be a number") from None
    if not 0.0 <= lam <= 1.0:
        raise ProtocolError("'lambda' must lie in [0, 1]")
    return lam


def whynot_question_from_dict(
    payload: Mapping[str, Any], *, default_weights: Weights = DEFAULT_WEIGHTS
) -> "WhyNotQuestion":
    """Parse one why-not question: query fields + ``missing`` [+ model, λ].

    The query half uses the same shape as a single ``/api/query`` body;
    ``model`` defaults to ``"full"`` (explanation plus both refinement
    models) and ``lambda`` to 0.5.
    """
    from repro.service.executor import WHYNOT_MODELS, WhyNotQuestion

    query = query_from_dict(payload, default_weights=default_weights)
    refs = missing_refs_from_dict(payload)
    lam = lambda_from_dict(payload)
    model = payload.get("model", "full")
    if model not in WHYNOT_MODELS:
        raise ProtocolError(
            f"unknown why-not model {model!r}; expected one of {WHYNOT_MODELS}"
        )
    return WhyNotQuestion(
        query=query, missing=tuple(refs), model=model, lam=lam
    )


def batch_whynot_questions_from_dict(
    payload: Mapping[str, Any],
    *,
    default_weights: Weights = DEFAULT_WEIGHTS,
    max_questions: int = MAX_BATCH_QUESTIONS,
) -> list["WhyNotQuestion"]:
    """Parse a ``POST /api/whynot/batch`` body: ``{"questions": [...]}``.

    A malformed element reports its index so clients can repair the
    batch.
    """
    raw = _require(payload, "questions")
    if not isinstance(raw, list) or not raw:
        raise ProtocolError(
            "'questions' must be a non-empty list of why-not question objects"
        )
    if len(raw) > max_questions:
        raise ProtocolError(
            f"batch too large: {len(raw)} questions exceeds the cap of "
            f"{max_questions}"
        )
    questions = []
    for index, item in enumerate(raw):
        if not isinstance(item, Mapping):
            raise ProtocolError(f"questions[{index}] must be a JSON object")
        try:
            questions.append(
                whynot_question_from_dict(item, default_weights=default_weights)
            )
        except ProtocolError as exc:
            raise ProtocolError(f"questions[{index}]: {exc}") from None
    return questions


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def object_to_dict(obj: SpatialObject) -> dict[str, Any]:
    return {
        "oid": obj.oid,
        "name": obj.name,
        "x": obj.loc.x,
        "y": obj.loc.y,
        "keywords": sorted(obj.doc),
    }


def _entry_to_dict(entry: RankedObject) -> dict[str, Any]:
    return {
        "rank": entry.rank,
        "score": entry.score,
        "sdist": entry.sdist,
        "tsim": entry.tsim,
        "object": object_to_dict(entry.obj),
    }


def result_to_dict(result: QueryResult) -> dict[str, Any]:
    return {
        "query": query_to_dict(result.query),
        "entries": [_entry_to_dict(entry) for entry in result.entries],
    }


# ----------------------------------------------------------------------
# Executor responses
# ----------------------------------------------------------------------
def execution_to_dict(execution: "Execution") -> dict[str, Any]:
    """Serialise one executor :class:`Execution` (single or batch member).

    ``degraded`` appears only on deadline-degraded partial results, so
    exact responses are byte-identical to the pre-deadline protocol.
    """
    payload: dict[str, Any] = {
        "response_ms": execution.response_ms,
        "cached": execution.cached,
        "source": execution.source,
        "result": result_to_dict(execution.result),
    }
    if execution.degraded is not None:
        payload["degraded"] = execution.degraded
    return payload


def batch_execution_to_dict(batch: "BatchExecution") -> dict[str, Any]:
    return {
        "count": len(batch),
        "total_ms": batch.total_ms,
        "results": [execution_to_dict(execution) for execution in batch],
    }


# ----------------------------------------------------------------------
# Why-not answers
# ----------------------------------------------------------------------
def _object_explanation_to_dict(explanation: ObjectExplanation) -> dict[str, Any]:
    return {
        "object": object_to_dict(explanation.obj),
        "rank": explanation.rank,
        "k": explanation.k,
        "ranks_behind": explanation.ranks_behind,
        "score": explanation.breakdown.score,
        "sdist": explanation.breakdown.sdist,
        "tsim": explanation.breakdown.tsim,
        "closer_objects": explanation.closer_objects,
        "more_similar_objects": explanation.more_similar_objects,
        "reason": explanation.reason.value,
        "viable_ws_intervals": (
            [list(interval) for interval in explanation.viable_ws_intervals]
            if explanation.viable_ws_intervals is not None
            else None
        ),
        "fixable_by_weights_alone": explanation.fixable_by_weights_alone,
        "narrative": explanation.narrative(),
    }


def explanation_to_dict(explanation: WhyNotExplanation) -> dict[str, Any]:
    return {
        "query": query_to_dict(explanation.query),
        "worst_rank": explanation.worst_rank,
        "suggested_model": explanation.suggested_model,
        "objects": [
            _object_explanation_to_dict(entry)
            for entry in explanation.explanations
        ],
    }


def preference_refinement_to_dict(
    refinement: PreferenceRefinement,
) -> dict[str, Any]:
    return {
        "model": "preference-adjustment",
        "refined_query": query_to_dict(refinement.refined_query),
        "penalty": refinement.penalty,
        "delta_k": refinement.delta_k,
        "delta_w": refinement.delta_w,
        "refined_worst_rank": refinement.refined_worst_rank,
        "initial_worst_rank": refinement.initial_worst_rank,
        "lambda": refinement.lam,
        "method": refinement.method,
    }


def keyword_refinement_to_dict(refinement: KeywordRefinement) -> dict[str, Any]:
    return {
        "model": "keyword-adaption",
        "refined_query": query_to_dict(refinement.refined_query),
        "penalty": refinement.penalty,
        "delta_k": refinement.delta_k,
        "delta_doc": refinement.delta_doc,
        "added": sorted(refinement.added),
        "removed": sorted(refinement.removed),
        "refined_worst_rank": refinement.refined_worst_rank,
        "initial_worst_rank": refinement.initial_worst_rank,
        "lambda": refinement.lam,
        "method": refinement.method,
    }


def whynot_answer_to_dict(answer: "WhyNotAnswer") -> dict[str, Any]:
    """Serialise a full why-not answer (explanation + both refinements)."""
    return {
        "model": "full",
        "explanation": explanation_to_dict(answer.explanation),
        "preference": (
            preference_refinement_to_dict(answer.preference)
            if answer.preference is not None
            else None
        ),
        "keyword": (
            keyword_refinement_to_dict(answer.keyword)
            if answer.keyword is not None
            else None
        ),
        "best_model": answer.best_model,
    }


def whynot_value_to_dict(model: str, value: Any) -> dict[str, Any]:
    """Serialise whatever a why-not model produced, by model name."""
    if model == "full":
        return whynot_answer_to_dict(value)
    if model == "explain":
        return explanation_to_dict(value)
    if model == "preference":
        return preference_refinement_to_dict(value)
    if model == "keywords":
        return keyword_refinement_to_dict(value)
    if model == "combined":
        return combined_refinement_to_dict(value)
    raise ValueError(f"unknown why-not model {model!r}")


def whynot_execution_to_dict(execution: "WhyNotExecution") -> dict[str, Any]:
    """Serialise one :class:`WhyNotExecutor` execution (batch member)."""
    payload: dict[str, Any] = {
        "model": execution.question.model,
        "response_ms": execution.response_ms,
        "cached": execution.cached,
        "source": execution.source,
        "topk_source": execution.topk_source,
    }
    if execution.degraded is not None:
        payload["degraded"] = execution.degraded
    if execution.error is not None:
        payload["error"] = execution.error
        payload["answer"] = None
    else:
        payload["answer"] = whynot_value_to_dict(
            execution.question.model, execution.answer
        )
    return payload


def whynot_batch_execution_to_dict(
    batch: "WhyNotBatchExecution",
) -> dict[str, Any]:
    return {
        "count": len(batch),
        "total_ms": batch.total_ms,
        "results": [whynot_execution_to_dict(execution) for execution in batch],
    }


def combined_refinement_to_dict(refinement: CombinedRefinement) -> dict[str, Any]:
    return {
        "model": "combined",
        "order": refinement.order,
        "refined_query": query_to_dict(refinement.refined_query),
        "penalty": refinement.penalty,
        "delta_k": refinement.delta_k,
        "delta_w": refinement.delta_w,
        "delta_doc": refinement.delta_doc,
        "refined_worst_rank": refinement.refined_worst_rank,
        "initial_worst_rank": refinement.initial_worst_rank,
        "lambda": refinement.lam,
        "keyword_stage": (
            keyword_refinement_to_dict(refinement.keyword_stage)
            if refinement.keyword_stage is not None
            else None
        ),
        "preference_stage": (
            preference_refinement_to_dict(refinement.preference_stage)
            if refinement.preference_stage is not None
            else None
        ),
    }
