"""Result auditing: "Are the returned hotels really the best?"

Both motivating examples of the paper have the user doubting the result
itself (Example 1: "Are there better options? Is something wrong with
the query so that other good options are also missing?"; Example 2:
"Are the returned hotels really the best?").  The why-not engine answers
the *missing-object* half of that doubt; this module answers the
*result-integrity* half: it re-derives the top-k with the brute-force
Definition-1 oracle and cross-checks the served result object by object,
score by score.

In production such an audit guards against index corruption (e.g. a
stale persisted index reattached to a newer database); in this
reproduction it doubles as a runtime assertion of the central
index-equals-oracle theorem the test suite establishes statically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.query import QueryResult, SpatialKeywordQuery
from repro.core.scoring import Scorer

__all__ = [
    "AuditFinding",
    "AuditReport",
    "audit_execution",
    "audit_refinement",
    "audit_result",
]


@dataclass(frozen=True, slots=True)
class AuditFinding:
    """One discrepancy between the served result and the oracle."""

    position: int
    kind: str
    detail: str


@dataclass(frozen=True, slots=True)
class AuditReport:
    """The verdict of one audit."""

    query: SpatialKeywordQuery
    ok: bool
    findings: tuple[AuditFinding, ...]
    checked_entries: int

    def describe(self) -> str:
        if self.ok:
            return (
                f"audit ok: the served top-{self.query.k} is exactly the "
                f"Definition-1 result ({self.checked_entries} entries checked)"
            )
        lines = [f"audit FAILED with {len(self.findings)} finding(s):"]
        lines.extend(
            f"  [{finding.position}] {finding.kind}: {finding.detail}"
            for finding in self.findings
        )
        return "\n".join(lines)


def audit_result(scorer: Scorer, served: QueryResult) -> AuditReport:
    """Cross-check a served result against the brute-force oracle.

    Checks, in order: result size, object identity per rank position,
    served scores against recomputed scores, and the Definition-1
    dominance property (no outside object outranks a returned one under
    the deterministic total order).
    """
    query = served.query
    findings: list[AuditFinding] = []

    oracle = scorer.top_k(query)
    expected_size = min(query.k, len(scorer.database))
    if len(served) != expected_size:
        findings.append(
            AuditFinding(
                position=0,
                kind="size-mismatch",
                detail=f"served {len(served)} entries, expected {expected_size}",
            )
        )

    for position, (served_entry, oracle_entry) in enumerate(
        zip(served.entries, oracle.entries), start=1
    ):
        if served_entry.obj.oid != oracle_entry.obj.oid:
            findings.append(
                AuditFinding(
                    position=position,
                    kind="wrong-object",
                    detail=(
                        f"served {served_entry.obj.label} (oid "
                        f"{served_entry.obj.oid}), oracle expects "
                        f"{oracle_entry.obj.label} (oid {oracle_entry.obj.oid})"
                    ),
                )
            )
            continue
        recomputed = scorer.score(served_entry.obj, query)
        if served_entry.score != recomputed:  # yasklint: disable=YASK103 -- the audit's whole point is bit-for-bit parity with the kernel
            findings.append(
                AuditFinding(
                    position=position,
                    kind="score-drift",
                    detail=(
                        f"served score {served_entry.score!r} != recomputed "
                        f"{recomputed!r} for {served_entry.obj.label}"
                    ),
                )
            )

    return AuditReport(
        query=query,
        ok=not findings,
        findings=tuple(findings),
        checked_entries=len(served),
    )


def audit_refinement(
    scorer: Scorer, refinement, missing_oids: Sequence[int]
) -> AuditReport:
    """Cross-check a why-not refinement: does it revive the missing set?

    Definitions 2 and 3 require the refined query to contain *every*
    missing object in its top-k'; a cached refinement served after the
    dataset changed (or a bug in a refiner's bound reasoning) would
    break exactly this contract, so the check re-derives the refined
    result with the brute-force oracle.  The ``refinement`` is
    duck-typed: anything with a ``refined_query`` and a ``penalty``.
    """
    refined_query = refinement.refined_query
    findings: list[AuditFinding] = []
    oracle = scorer.top_k(refined_query)
    returned = {entry.obj.oid for entry in oracle.entries}
    for position, oid in enumerate(sorted(missing_oids), start=1):
        if oid not in returned:
            findings.append(
                AuditFinding(
                    position=position,
                    kind="not-revived",
                    detail=(
                        f"object {oid} is still outside the refined "
                        f"top-{refined_query.k}"
                    ),
                )
            )
    if not 0.0 <= refinement.penalty <= 1.0:
        findings.append(
            AuditFinding(
                position=0,
                kind="penalty-out-of-range",
                detail=f"penalty {refinement.penalty!r} outside [0, 1]",
            )
        )
    return AuditReport(
        query=refined_query,
        ok=not findings,
        findings=tuple(findings),
        checked_entries=len(missing_oids),
    )


def audit_execution(scorer: Scorer, execution) -> AuditReport:
    """Audit an executor :class:`~repro.service.executor.Execution`.

    The caching tier adds a new way for a served result to go stale — a
    cache entry outliving the dataset it was computed from — so the
    audit applies to cached responses exactly as to fresh ones.  The
    ``execution`` is duck-typed (anything with a ``.result``) to keep
    this module importable without the executor.
    """
    return audit_result(scorer, execution.result)
