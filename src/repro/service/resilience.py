"""Server-side resilience primitives: admission control + circuit breaking.

Two small, independently testable state machines the HTTP server wires
in front of its handlers:

* :class:`InflightGauge` — a bounded concurrent-request counter.  When
  the bound is reached, further requests are *shed* with a structured
  ``503`` + ``Retry-After`` instead of queueing behind a saturated
  worker pool; the gauge (current / peak / shed counts) is surfaced in
  ``/api/health/ready`` and the ``resilience`` section of
  ``GET /api/stats``.
* :class:`CircuitBreaker` — the classic three-state breaker guarding
  the WAL append path.  Persistent ``WalWriteError``\\ s (a full disk, a
  dead device) trip it OPEN: mutations are rejected *fast* with a
  ``Retry-After`` and the engine keeps serving reads — an advertised
  read-only degraded mode instead of a grinding failure on every write.
  After a cooldown the breaker admits exactly one *probe* mutation
  (HALF_OPEN); the probe's success closes the breaker, its failure
  re-opens it for another cooldown.

Both read time through :func:`repro.faults.now`, so chaos tests drive
cooldown expiry with a seeded virtual clock — no wall-clock sleeps.
"""

from __future__ import annotations

from repro import concurrency, faults

__all__ = ["CircuitBreaker", "InflightGauge"]


class InflightGauge:
    """Bounded in-flight request counter with shed accounting.

    ``limit=None`` means unbounded: :meth:`try_enter` always admits, but
    the gauge still tracks current/peak concurrency for observability.
    """

    def __init__(self, limit: int | None = None) -> None:
        if limit is not None and limit < 1:
            raise ValueError(f"in-flight limit must be at least 1, got {limit}")
        self.limit = limit
        self._lock = concurrency.ordered_lock(
            "resilience.inflight", concurrency.LEVEL_LEAF
        )
        self._inflight = 0
        self._peak = 0
        self._admitted = 0
        self._shed = 0

    def try_enter(self) -> bool:
        """Admit one request, or record a shed and return ``False``."""
        with self._lock:
            if self.limit is not None and self._inflight >= self.limit:
                self._shed += 1
                return False
            self._inflight += 1
            self._admitted += 1
            if self._inflight > self._peak:
                self._peak = self._inflight
            return True

    def exit(self) -> None:
        """Release one admitted request (always pair with :meth:`try_enter`)."""
        with self._lock:
            if self._inflight <= 0:
                raise RuntimeError("InflightGauge.exit() without a matching enter")
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def shed(self) -> int:
        with self._lock:
            return self._shed

    def to_dict(self) -> dict[str, object]:
        with self._lock:
            return {
                "limit": self.limit,
                "inflight": self._inflight,
                "peak": self._peak,
                "admitted": self._admitted,
                "shed": self._shed,
            }


#: Breaker states (string-valued for direct use in JSON payloads).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with probe-based half-open recovery.

    * CLOSED — operations flow; ``failure_threshold`` *consecutive*
      failures trip the breaker.
    * OPEN — operations are rejected instantly with a ``Retry-After`` of
      the remaining cooldown; after ``cooldown_ms`` the next
      :meth:`allow` transitions to HALF_OPEN.
    * HALF_OPEN — exactly one in-flight probe is admitted; its success
      closes the breaker, its failure re-opens it for a fresh cooldown.
      Concurrent requests during the probe are rejected like OPEN.

    Time comes from :func:`repro.faults.now`: under an armed
    :class:`~repro.faults.FaultPlan` the cooldown elapses on the plan's
    virtual clock, so recovery tests advance time explicitly.
    """

    def __init__(
        self, *, failure_threshold: int = 3, cooldown_ms: float = 1000.0
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure threshold must be at least 1, got {failure_threshold}"
            )
        if cooldown_ms <= 0:
            raise ValueError(f"cooldown must be positive, got {cooldown_ms}")
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self._lock = concurrency.ordered_lock(
            "resilience.breaker", concurrency.LEVEL_LEAF
        )
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._trips = 0
        self._rejections = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> tuple[bool, float | None]:
        """``(admitted, retry_after_seconds)`` for one operation.

        Rejected operations carry the seconds a client should wait
        before retrying (never below 1s, so the HTTP header stays a
        meaningful integer).
        """
        with self._lock:
            if self._state == CLOSED:
                return True, None
            elapsed_ms = (faults.now() - self._opened_at) * 1000.0
            if self._state == OPEN and elapsed_ms >= self.cooldown_ms:
                self._state = HALF_OPEN
                self._probing = False
            if self._state == HALF_OPEN and not self._probing:
                self._probing = True  # this caller is the probe
                return True, None
            self._rejections += 1
            remaining_s = max(0.0, self.cooldown_ms / 1000.0 - elapsed_ms / 1000.0)
            return False, max(1.0, remaining_s)

    def record_success(self) -> None:
        """An admitted operation completed; a probe's success closes."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._probing = False

    def record_failure(self) -> None:
        """An admitted operation failed; enough in a row trips OPEN."""
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN or (
                self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = faults.now()
                self._probing = False
                self._trips += 1

    def to_dict(self) -> dict[str, object]:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_ms": self.cooldown_ms,
                "trips": self._trips,
                "rejections": self._rejections,
            }
