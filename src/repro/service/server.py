"""The YASK HTTP server (the browser–server model of Fig. 1).

The paper's server side "is built on Apache Tomcat, and its query
engines are implemented in Java"; the reproduction substitutes Python's
threading ``http.server`` (DESIGN.md, substitution 2) with the same
request flow:

* ``POST /api/query`` — issue an initial spatial keyword top-k query;
  the server caches it in a session and returns a ``session_id`` for
  follow-up why-not questions.
* ``POST /api/query/batch`` — execute a list of top-k queries in one
  request through the shared :class:`QueryExecutor` (worker-pool
  fan-out, result cache, in-flight dedup); stateless, no sessions.
* ``POST /api/whynot/explain`` — the explanation generator.
* ``POST /api/whynot/preference`` — preference-adjusted refinement; the
  refined query is executed and its result returned alongside.
* ``POST /api/whynot/keywords`` — keyword-adapted refinement, ditto.
* ``POST /api/whynot/batch`` — answer a list of independent why-not
  questions in one request through the shared
  :class:`WhyNotExecutor`; stateless, each question carries its own
  query, missing objects, model and λ.
* ``POST /api/session/close`` — the user "gave up asking" (drops the cache).
* ``GET /api/objects`` — every object (the grey markers of Fig. 3).
* ``GET /api/objects/<oid-or-name>`` — one object; unknown references
  are a structured 404, never a 500.
* ``POST /api/objects`` — live-ingest one object or a list of objects.
* ``DELETE /api/objects/<oid-or-name>`` — retire one object.
* ``POST /api/mutations`` — a mixed insert/update/delete batch; applied
  atomically under the engine's write lock, followed by *scoped* cache
  invalidation (only cached results the batch could affect are
  dropped).
* ``GET /api/log?session_id=…`` — the query-log panel (Fig. 4, Panel 5).
* ``GET /api/stats`` — cache hit/miss/eviction counters for both
  executor tiers (top-k and why-not).
* ``GET /healthz`` — liveness probe (historical alias).
* ``GET /api/health/live`` — liveness: the process answers, nothing else.
* ``GET /api/health/ready`` — readiness: 503 + detail while the WAL
  circuit breaker holds the server in read-only degraded mode;
  otherwise 200 with breaker state, in-flight gauge and follower lag.

All top-k executions — single and batch — flow through one
:class:`repro.service.executor.QueryExecutor`, so a repeated query is a
cache hit regardless of which user or endpoint issued it first; the
query log marks such responses as cache hits.  Every why-not request —
session-bound or batched — likewise flows through one
:class:`repro.service.executor.WhyNotExecutor`, which caches full
answers, dedups identical concurrent questions and reuses the top-k
cache for each question's initial result instead of re-running the
search.

Every why-not response carries the fields the demonstration GUI shows:
the refined parameters, the penalty against the initial query and the
server-side response time.
"""

from __future__ import annotations

import json
import math
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping
from urllib.parse import parse_qs, unquote, urlparse

from repro import concurrency, faults
from repro.core.mutations import MissingTargetError, Mutation, MutationError
from repro.service.api import YaskEngine
from repro.service.executor import (
    QueryExecutor,
    WhyNotExecutor,
    WhyNotQuestion,
    consistent_stats,
)
from repro.service.protocol import (
    MAX_BATCH_MUTATIONS,
    ProtocolError,
    batch_execution_to_dict,
    batch_queries_from_dict,
    batch_token_from_dict,
    batch_whynot_questions_from_dict,
    combined_refinement_to_dict,
    explanation_to_dict,
    keyword_refinement_to_dict,
    lambda_from_dict,
    missing_refs_from_dict,
    mutations_from_dict,
    object_to_dict,
    spatial_object_from_dict,
    preference_refinement_to_dict,
    query_from_dict,
    result_to_dict,
    timeout_ms_from_dict,
    whynot_batch_execution_to_dict,
)
from repro.service.protocol import min_generation_from_dict
from repro.service.procpool import WorkerCrashedError
from repro.service.resilience import CLOSED, CircuitBreaker, InflightGauge
from repro.service.session import SessionManager
from repro.service.wal import FollowerEngine, FollowerLagError, WalWriteError
from repro.whynot.errors import WhyNotError

__all__ = ["YaskHTTPServer", "serve_forever"]

_MAX_BODY_BYTES = 1 << 20  # defensive cap on request bodies


class _RequestError(Exception):
    """An error with an HTTP status code (and optional Retry-After)."""

    def __init__(
        self, status: int, message: str, *, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class _FollowerEngineProxy:
    """The executors' engine handle on a follower server.

    A follower's engine object can be *replaced* mid-flight: when log
    compaction outruns the tail position,
    :meth:`~repro.service.wal.FollowerEngine.poll` re-bootstraps from
    the newest snapshot and swaps in a fresh engine.  The executors
    must always talk to the current one, so they hold this proxy
    (re-reading ``follower.engine`` per call) instead of a direct
    reference that would silently pin the pre-rebootstrap state.
    """

    __slots__ = ("_follower",)

    def __init__(self, follower: FollowerEngine) -> None:
        self._follower = follower

    def query(self, query):
        return self._follower.engine.query(query)

    def resolve_missing_oids(self, references):
        return self._follower.engine.resolve_missing_oids(references)

    def answer_whynot(self, question, *, initial_result=None):
        return self._follower.engine.answer_whynot(
            question, initial_result=initial_result
        )

    @property
    def scorer(self):
        return self._follower.engine.scorer


def _keyerror_message(exc: KeyError) -> str:
    """The human-readable message of a database lookup ``KeyError``.

    ``SpatialDatabase.get``/``resolve`` raise with a full sentence as
    the sole argument; ``str(KeyError)`` would wrap it in quotes.
    """
    return str(exc.args[0]) if exc.args else str(exc)


class YaskHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to a YaskEngine and SessionManager."""

    daemon_threads = True

    def __init__(
        self,
        engine: YaskEngine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        session_capacity: int = 256,
        cache_capacity: int = 1024,
        whynot_cache_capacity: int = 256,
        cache_skyband: int = 8,
        batch_workers: int = 8,
        follower: FollowerEngine | None = None,
        snapshot_every: int | None = None,
        snapshot_interval_secs: float | None = None,
        max_inflight: int | None = None,
        breaker_failure_threshold: int = 3,
        breaker_cooldown_ms: float = 1000.0,
    ) -> None:
        if follower is not None and follower.engine is not engine:
            raise ValueError(
                "the follower's engine must be the engine being served"
            )
        if snapshot_every is not None:
            if snapshot_every < 1:
                raise ValueError("snapshot_every must be positive")
            if engine.wal is None:
                raise ValueError(
                    "snapshot_every requires an engine with a write-ahead log"
                )
        if snapshot_interval_secs is not None:
            if snapshot_interval_secs <= 0:
                raise ValueError("snapshot_interval_secs must be positive")
            if engine.wal is None:
                raise ValueError(
                    "snapshot_interval_secs requires an engine with a "
                    "write-ahead log"
                )
        self._engine = engine
        # A follower server is read-only: reads poll the tailed log
        # before executing, writes are refused with a structured 403.
        self.follower = follower
        # Admission control: a bounded in-flight gauge sheds excess
        # POST/DELETE traffic with a structured 503 + Retry-After
        # instead of queueing it behind a saturated worker pool.  GETs
        # (health probes, stats) are always admitted — an overloaded
        # server must still answer "am I alive".
        self.inflight = InflightGauge(max_inflight)
        # The WAL circuit breaker: persistent WalWriteErrors flip the
        # primary into an advertised read-only degraded mode instead of
        # grinding through a failing append on every mutation.  Only a
        # primary with a log has one (a follower is read-only anyway).
        self.breaker: CircuitBreaker | None = (
            CircuitBreaker(
                failure_threshold=breaker_failure_threshold,
                cooldown_ms=breaker_cooldown_ms,
            )
            if engine.wal is not None and follower is None
            else None
        )
        self.snapshot_every = snapshot_every
        self.snapshot_interval_secs = snapshot_interval_secs
        # Root of the lock hierarchy: held across engine.snapshot(),
        # which takes the engine read lock and then the WAL lock (and
        # fsyncs — sanctioned, that is the snapshot's durability point).
        self._snapshot_lock = concurrency.ordered_lock(
            "server.snapshot", concurrency.LEVEL_SNAPSHOT, fsync_safe=True
        )
        self._snapshot_generation = (
            engine.wal.snapshot_generation if engine.wal is not None else 0
        )
        # Wall-clock cadence (ROADMAP item 2 follow-up): a batch burst
        # followed by a quiet hour must not leave the whole burst
        # un-checkpointed just because the *next* batch never arrives.
        # The timer thread snapshots whenever records accumulated since
        # the last checkpoint and the interval elapsed.
        self._snapshot_timer_stop = threading.Event()
        self._snapshot_timer: threading.Thread | None = None
        if snapshot_interval_secs is not None:
            self._snapshot_timer = threading.Thread(
                target=self._snapshot_on_interval,
                name="yask-snapshot-timer",
                daemon=True,
            )
        # On a follower the executors hold a proxy, not the engine
        # itself: a compaction-outrun poll may swap the follower's
        # engine (snapshot re-bootstrap), and the executors must follow.
        served_engine = (
            _FollowerEngineProxy(follower) if follower is not None else engine
        )
        self.executor = QueryExecutor(
            served_engine,
            cache_capacity=cache_capacity,
            max_workers=batch_workers,
            skyband_delta=cache_skyband,
        )
        # Shares the top-k executor's invalidation domain and reuses its
        # cached results as why-not starting points.
        self.whynot_executor = WhyNotExecutor(
            served_engine,
            self.executor,
            cache_capacity=whynot_cache_capacity,
            max_workers=batch_workers,
        )
        self.sessions = SessionManager(capacity=session_capacity)
        super().__init__((host, port), _YaskRequestHandler)
        if self._snapshot_timer is not None:
            self._snapshot_timer.start()

    @property
    def engine(self) -> YaskEngine:
        """The engine currently being served.

        On a follower this re-reads ``follower.engine`` every time: a
        compaction-outrun poll re-bootstraps the follower from the
        newest snapshot and swaps in a fresh engine, and every handler
        must see the swap immediately.
        """
        if self.follower is not None:
            return self.follower.engine
        return self._engine

    @property
    def endpoint(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def resilience_stats(self) -> dict[str, Any]:
        """The ``resilience`` section of ``GET /api/stats``."""
        breaker = self.breaker
        return {
            "inflight": self.inflight.to_dict(),
            "breaker": breaker.to_dict() if breaker is not None else None,
            "read_only": (
                self.follower is not None
                or (breaker is not None and breaker.state != CLOSED)
            ),
        }

    def maybe_snapshot(self) -> dict | None:
        """Checkpoint the log when the configured cadence is due.

        Called after every applied batch; serialised so concurrent
        mutation threads cannot race two snapshots (one would regress
        the other's manifest generation).
        """
        if self.snapshot_every is None:
            return None
        with self._snapshot_lock:
            due = (
                self.engine.generation - self._snapshot_generation
                >= self.snapshot_every
            )
            if not due:
                return None
            info = self.engine.snapshot()
            self._snapshot_generation = info["generation"]
            return info

    def _snapshot_if_dirty(self) -> dict | None:
        """Checkpoint if any records landed since the last snapshot.

        The wall-clock cadence path: unlike :meth:`maybe_snapshot` it
        has no record-count threshold — one un-checkpointed batch that
        sat for a full interval is reason enough.
        """
        with self._snapshot_lock:
            if self.engine.generation == self._snapshot_generation:
                return None
            info = self.engine.snapshot()
            self._snapshot_generation = info["generation"]
            return info

    def _snapshot_on_interval(self) -> None:
        """Body of the ``yask-snapshot-timer`` daemon thread."""
        interval = self.snapshot_interval_secs
        assert interval is not None
        while not self._snapshot_timer_stop.wait(interval):
            try:
                self._snapshot_if_dirty()
            except Exception as exc:  # pragma: no cover - WAL fault path
                # A failing snapshot must not kill the cadence thread;
                # the same fault will surface loudly on the write path.
                print(
                    f"yask: interval snapshot failed: {exc}", file=sys.stderr
                )

    def sync_follower(self) -> int:
        """Tail the log before a read; drop caches if anything applied."""
        if self.follower is None:
            return 0
        try:
            applied = self.follower.poll()
        except OSError as exc:
            # The replica could not reach the primary's log (shared
            # volume hiccup, injected fault).  The replica itself is
            # healthy, merely unable to advance right now: a retryable
            # 503, not an internal error.
            raise _RequestError(
                503,
                f"replica tailing failed: {exc}; retry shortly",
                retry_after=1.0,
            ) from exc
        if applied:
            # The replica advanced: cached results may predate the new
            # records.  No batch summary survives replay here, so drop
            # wholesale (cascades into the why-not cache).
            self.executor.invalidate()
        return applied

    def start_background(self) -> threading.Thread:
        """Serve requests on a daemon thread (tests and examples)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def server_close(self) -> None:
        if self._snapshot_timer is not None:
            self._snapshot_timer_stop.set()
            self._snapshot_timer.join(timeout=5.0)
        super().server_close()
        self.executor.close()
        self.whynot_executor.close()
        self.engine.close()


class _YaskRequestHandler(BaseHTTPRequestHandler):
    server: YaskHTTPServer  # narrowed type

    # Silence per-request stderr logging; the query log panel is the
    # user-visible log.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/healthz":
                self._send_json(200, {"status": "ok", "objects": len(self.server.engine.database)})
            elif parsed.path == "/api/health/live":
                # Liveness: the process accepts connections and can
                # serialise a response.  Never consults engine state —
                # a degraded server is still alive.
                self._send_json(200, {"status": "ok"})
            elif parsed.path == "/api/health/ready":
                status, body = self._readiness()
                self._send_json(status, body)
            elif parsed.path.startswith("/api/objects/"):
                obj = self._resolve_object(parsed.path)
                self._send_json(200, {"object": object_to_dict(obj)})
            elif parsed.path == "/api/objects":
                payload = {
                    "objects": [
                        object_to_dict(obj)
                        for obj in self.server.engine.database
                    ]
                }
                self._send_json(200, payload)
            elif parsed.path == "/api/log":
                params = parse_qs(parsed.query)
                session_id = params.get("session_id", [""])[0]
                session = self._get_session(session_id)
                entries = [
                    {
                        "sequence": entry.sequence,
                        "kind": entry.kind,
                        "params": dict(entry.params),
                        "penalty": entry.penalty,
                        "response_ms": entry.response_ms,
                        "cached": entry.cached,
                    }
                    for entry in session.log.entries
                ]
                self._send_json(200, {"session_id": session_id, "entries": entries})
            elif parsed.path == "/api/stats":
                kernel = self.server.engine.kernel
                router = self.server.engine.shard_router
                # Both executor snapshots come from one cache
                # generation: a stats read racing invalidate() must
                # never show the top-k side invalidated and the linked
                # why-not side not (or vice versa).
                cache_stats, whynot_stats = consistent_stats(
                    self.server.executor, self.server.whynot_executor
                )
                self._send_json(
                    200,
                    {
                        "cache": cache_stats.to_dict(),
                        "whynot_cache": whynot_stats.to_dict(),
                        # Live-mutation tier: generation, batch/op
                        # tallies, kernel column occupancy and index
                        # rebuilds (supported=False for IR-tree
                        # engines, which cannot mutate incrementally).
                        "mutations": self.server.engine.mutation_stats(),
                        # Columnar-kernel hit counters (None when the
                        # text model has no kernel): how many batch
                        # passes / point scorings the compute tier under
                        # the caches actually ran.
                        "kernel": (
                            kernel.stats.to_dict()
                            if kernel is not None
                            else None
                        ),
                        # Scatter-gather counters (None when the engine
                        # is unsharded): per-shard object counts plus
                        # scatter/merge timings and shard scan/skip
                        # tallies for top-k and the why-not primitives.
                        "shards": (
                            router.to_dict() if router is not None else None
                        ),
                        # Durability tier: {"enabled": False} for a
                        # memory-only engine; otherwise the WAL's
                        # generation/segment/sync counters (primary) or
                        # the tailing replica's poll counters
                        # (follower).
                        "durability": (
                            self.server.follower.to_dict()
                            if self.server.follower is not None
                            else self.server.engine.durability_stats()
                        ),
                        # Graceful-degradation tier: in-flight gauge,
                        # WAL circuit breaker and the advertised
                        # read-only flag.
                        "resilience": self.server.resilience_stats(),
                        # Process worker tier (None unless the engine
                        # runs shard_workers="proc"): worker count,
                        # start method, scan/delta/restart tallies and
                        # per-shard generations.
                        "procpool": (
                            worker_pool.to_dict()
                            if (
                                worker_pool := getattr(
                                    self.server.engine, "worker_pool", None
                                )
                            )
                            is not None
                            else None
                        ),
                    },
                )
            else:
                self._send_json(404, {"error": f"unknown path {parsed.path}"})
        except _RequestError as exc:
            self._send_json(
                exc.status, {"error": str(exc)}, retry_after=exc.retry_after
            )
        except Exception as exc:  # pragma: no cover - last-resort guard
            self._send_json(500, {"error": f"internal error: {exc}"})

    def do_POST(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        handlers: Mapping[str, Callable[[Mapping[str, Any]], tuple[int, dict]]] = {
            "/api/query": self._handle_query,
            "/api/query/batch": self._handle_query_batch,
            "/api/objects": self._handle_insert_objects,
            "/api/mutations": self._handle_mutations,
            "/api/whynot/explain": self._handle_explain,
            "/api/whynot/preference": self._handle_preference,
            "/api/whynot/keywords": self._handle_keywords,
            "/api/whynot/combined": self._handle_combined,
            "/api/whynot/batch": self._handle_whynot_batch,
            "/api/session/close": self._handle_close,
        }
        handler = handlers.get(parsed.path)
        if handler is None:
            self._send_json(404, {"error": f"unknown path {parsed.path}"})
            return
        if not self.server.inflight.try_enter():
            # Load-shedding: beyond the in-flight bound the request is
            # refused *before* any body is read or lock is touched, so
            # an overloaded server answers in microseconds.
            self._send_json(
                503,
                {
                    "error": "server overloaded: too many requests in "
                    "flight; retry after the advertised delay",
                    "shed": True,
                },
                retry_after=1.0,
            )
            return
        try:
            payload = self._read_json()
            status, body = handler(payload)
            self._send_json(status, body)
        except _RequestError as exc:
            self._send_json(
                exc.status, {"error": str(exc)}, retry_after=exc.retry_after
            )
        except ProtocolError as exc:
            self._send_json(400, {"error": str(exc)})
        except WorkerCrashedError as exc:
            # A shard worker process died mid-scan.  The pool has
            # already restarted it from the shard's current columns, so
            # the failure is transient by construction: a structured
            # 503 with Retry-After, and the retried query is exact.
            self._send_json(
                503,
                {"error": str(exc), "worker_crashed": True},
                retry_after=1.0,
            )
        except (FollowerLagError, WalWriteError) as exc:
            # Durability failures are 503s: the write was NOT applied
            # (WalWriteError) or the replica is healthy but behind the
            # client's consistency token (FollowerLagError); retry.
            self._send_json(503, {"error": str(exc)}, retry_after=1.0)
        except MissingTargetError as exc:
            # An update/delete addressed an object that does not exist:
            # the mutation analogue of a 404, not an internal error.
            self._send_json(404, {"error": str(exc)})
        except MutationError as exc:
            self._send_json(409, {"error": str(exc)})
        except WhyNotError as exc:
            self._send_json(422, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - last-resort guard
            self._send_json(500, {"error": f"internal error: {exc}"})
        finally:
            self.server.inflight.exit()

    def do_DELETE(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        if not self.server.inflight.try_enter():
            self._send_json(
                503,
                {
                    "error": "server overloaded: too many requests in "
                    "flight; retry after the advertised delay",
                    "shed": True,
                },
                retry_after=1.0,
            )
            return
        try:
            if not parsed.path.startswith("/api/objects/"):
                self._send_json(404, {"error": f"unknown path {parsed.path}"})
                return
            obj = self._resolve_object(parsed.path)
            report = self._apply_and_invalidate([Mutation.delete(obj.oid)])
            self._send_json(200, report)
        except _RequestError as exc:
            self._send_json(
                exc.status, {"error": str(exc)}, retry_after=exc.retry_after
            )
        except WalWriteError as exc:
            self._send_json(503, {"error": str(exc)}, retry_after=1.0)
        except MissingTargetError as exc:
            self._send_json(404, {"error": str(exc)})
        except MutationError as exc:
            self._send_json(409, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - last-resort guard
            self._send_json(500, {"error": f"internal error: {exc}"})
        finally:
            self.server.inflight.exit()

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _sync_read_state(self, payload: Mapping[str, Any]) -> None:
        """Enforce the ``min_generation`` consistency token on a read.

        A follower tails the log first, so a token the primary just
        acknowledged is normally satisfiable within one poll; a replica
        still behind (and a primary asked for a future generation)
        answers a structured 503 rather than stale data.
        """
        server = self.server
        min_generation = min_generation_from_dict(payload)
        server.sync_follower()
        if min_generation is None:
            return
        generation = server.engine.generation
        if generation < min_generation:
            raise _RequestError(
                503,
                f"serving generation {generation}, but the request requires "
                f"at least {min_generation}; retry shortly",
            )

    @staticmethod
    def _deadline_of(payload: Mapping[str, Any]) -> "faults.Deadline | None":
        """Build the request's deadline from an optional ``timeout_ms``."""
        budget = timeout_ms_from_dict(payload)
        return faults.Deadline(budget) if budget is not None else None

    def _handle_query(self, payload: Mapping[str, Any]) -> tuple[int, dict]:
        engine = self.server.engine
        self._sync_read_state(payload)
        query = query_from_dict(payload, default_weights=engine.default_weights)
        deadline = self._deadline_of(payload)
        execution = self.server.executor.execute(query, deadline=deadline)
        session = self.server.sessions.create(query, execution.result)
        session.log.record(
            "top-k query",
            {"k": query.k, "keywords": ",".join(sorted(query.doc))},
            execution.response_ms,
            cached=execution.cached,
        )
        body = {
            "session_id": session.session_id,
            "response_ms": execution.response_ms,
            "cached": execution.cached,
            "result": result_to_dict(execution.result),
        }
        if execution.degraded is not None:
            # Partial results, honestly labelled: the shards that
            # answered are exact, the envelope says what was skipped.
            body["degraded"] = execution.degraded
        return 200, body

    def _handle_query_batch(self, payload: Mapping[str, Any]) -> tuple[int, dict]:
        engine = self.server.engine
        self._sync_read_state(payload)
        queries = batch_queries_from_dict(
            payload, default_weights=engine.default_weights
        )
        batch = self.server.executor.execute_batch(
            queries, deadline=self._deadline_of(payload)
        )
        return 200, batch_execution_to_dict(batch)

    # ------------------------------------------------------------------
    # Mutation handlers (live insert / update / delete)
    # ------------------------------------------------------------------
    def _apply_and_invalidate(
        self, mutations, *, batch_token: str | None = None
    ) -> dict:
        """Apply a batch through the engine, then invalidate *scoped*.

        Only cached top-k results the batch could actually affect are
        dropped (spatial-region + keyword-overlap + k-th-score test
        against the batch summary); unaffected entries stay warm.  The
        response reports both the engine-side report and the cache
        tally.

        The WAL circuit breaker fronts the whole path: while OPEN the
        server is in advertised read-only degraded mode and mutations
        are refused fast with a ``Retry-After`` of the remaining
        cooldown; a half-open probe that succeeds closes it again.  A
        ``batch_token`` retry of an already-committed batch returns the
        original generation with ``deduplicated: true`` and touches
        neither the WAL, the indexes nor the caches.
        """
        engine = self.server.engine
        if self.server.follower is not None:
            raise _RequestError(
                403,
                "this server is a read-only follower; send mutations to "
                "the primary that owns the write-ahead log",
            )
        if not engine.supports_mutations:
            raise _RequestError(
                501,
                "this engine cannot apply mutations (IR-tree/cosine "
                "configuration); rebuild the engine with the new objects",
            )
        breaker = self.server.breaker
        if breaker is not None:
            admitted, retry_after = breaker.allow()
            if not admitted:
                raise _RequestError(
                    503,
                    "read-only degraded mode: the write-ahead log is "
                    "failing and the circuit breaker is open; reads are "
                    "served, mutations are refused until a probe "
                    "succeeds",
                    retry_after=retry_after,
                )
        try:
            report = engine.apply_mutations(
                mutations, batch_token=batch_token
            )
        except WalWriteError:
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        if report.deduplicated:
            # Nothing moved: the token's original commit already did
            # the invalidation and (maybe) the snapshot.
            return report.to_dict()
        maintenance = self.server.executor.maintain(report.change)
        snapshot = self.server.maybe_snapshot()
        response = {
            **report.to_dict(),
            # Kept for response compatibility with the drop-on-write
            # tier: "dropped" counts evictions (including skyband
            # rescans), "kept" everything maintenance preserved.
            "cache_invalidation": {
                "dropped": maintenance["dropped"] + maintenance["rescans"],
                "kept": maintenance["kept"] + maintenance["patched"],
                "linked_dropped": maintenance["linked_dropped"],
                "linked_kept": maintenance["linked_kept"]
                + maintenance["linked_patched"],
            },
            "cache_maintenance": maintenance,
        }
        if snapshot is not None:
            response["snapshot"] = snapshot
        return response

    def _handle_insert_objects(self, payload: Mapping[str, Any]) -> tuple[int, dict]:
        """``POST /api/objects``: insert one object or a list of objects."""
        if "objects" in payload:
            raw = payload["objects"]
            if not isinstance(raw, list) or not raw:
                raise ProtocolError(
                    "'objects' must be a non-empty list of object payloads"
                )
            if len(raw) > MAX_BATCH_MUTATIONS:
                # Same cap (and same reason) as /api/mutations: a batch
                # holds the engine's exclusive write lock while it
                # applies, so one request must not stall the read path.
                raise ProtocolError(
                    f"batch too large: {len(raw)} objects exceeds the cap "
                    f"of {MAX_BATCH_MUTATIONS}"
                )
            objects = []
            for index, item in enumerate(raw):
                if not isinstance(item, Mapping):
                    raise ProtocolError(f"objects[{index}] must be a JSON object")
                try:
                    objects.append(spatial_object_from_dict(item))
                except ProtocolError as exc:
                    raise ProtocolError(f"objects[{index}]: {exc}") from None
        else:
            objects = [spatial_object_from_dict(payload)]
        mutations = [Mutation.insert(obj) for obj in objects]
        return 200, self._apply_and_invalidate(
            mutations, batch_token=batch_token_from_dict(payload)
        )

    def _handle_mutations(self, payload: Mapping[str, Any]) -> tuple[int, dict]:
        """``POST /api/mutations``: a mixed insert/update/delete batch."""
        mutations = mutations_from_dict(payload)
        return 200, self._apply_and_invalidate(
            mutations, batch_token=batch_token_from_dict(payload)
        )

    def _ask_whynot(
        self, payload: Mapping[str, Any], model: str
    ) -> tuple["Session", WhyNotQuestion, "WhyNotExecution"]:
        """Run a session-bound why-not question through the executor.

        Repeated questions (same session query, missing set, model and
        λ — from this user or any other) are why-not cache hits and
        never recompute the refinement pipeline.
        """
        session = self._get_session(str(payload.get("session_id", "")))
        # The explanation has no refinement to weigh, so /explain keeps
        # its historical contract of ignoring a "lambda" field entirely.
        lam = 0.5 if model == "explain" else lambda_from_dict(payload)
        question = WhyNotQuestion(
            query=session.initial_query,
            missing=tuple(missing_refs_from_dict(payload)),
            model=model,
            lam=lam,
        )
        execution = self.server.whynot_executor.execute(
            question, deadline=self._deadline_of(payload)
        )
        return session, question, execution

    def _degraded_whynot_body(
        self, session, execution: "WhyNotExecution"
    ) -> dict:
        """The response body of a deadline-degraded why-not execution.

        Why-not arithmetic is count-exact or worthless, so there is no
        partial answer to return — only the honest envelope.  The
        status stays 200: the request was handled as asked, within the
        budget the client itself set.
        """
        return {
            "session_id": session.session_id,
            "response_ms": execution.response_ms,
            "cached": False,
            "degraded": execution.degraded,
            "error": execution.error,
        }

    def _handle_explain(self, payload: Mapping[str, Any]) -> tuple[int, dict]:
        session, question, execution = self._ask_whynot(payload, "explain")
        if execution.degraded is not None:
            return 200, self._degraded_whynot_body(session, execution)
        session.log.record(
            "why-not explanation",
            {"missing": len(question.missing)},
            execution.response_ms,
            cached=execution.cached,
        )
        return 200, {
            "session_id": session.session_id,
            "response_ms": execution.response_ms,
            "cached": execution.cached,
            "explanation": explanation_to_dict(execution.answer),
        }

    def _refined_result(self, refinement) -> dict:
        """Execute a refinement's refined query through the top-k cache."""
        return result_to_dict(
            self.server.executor.execute(refinement.refined_query).result
        )

    def _handle_preference(self, payload: Mapping[str, Any]) -> tuple[int, dict]:
        session, question, execution = self._ask_whynot(payload, "preference")
        if execution.degraded is not None:
            return 200, self._degraded_whynot_body(session, execution)
        refinement = execution.answer
        session.log.record(
            "preference adjustment",
            {
                "missing": len(question.missing),
                "lambda": question.lam,
                "refined_ws": refinement.refined_query.ws,
                "refined_k": refinement.refined_query.k,
            },
            execution.response_ms,
            penalty=refinement.penalty,
            cached=execution.cached,
        )
        return 200, {
            "session_id": session.session_id,
            "response_ms": execution.response_ms,
            "cached": execution.cached,
            "refinement": preference_refinement_to_dict(refinement),
            "refined_result": self._refined_result(refinement),
        }

    def _handle_keywords(self, payload: Mapping[str, Any]) -> tuple[int, dict]:
        session, question, execution = self._ask_whynot(payload, "keywords")
        if execution.degraded is not None:
            return 200, self._degraded_whynot_body(session, execution)
        refinement = execution.answer
        session.log.record(
            "keyword adaption",
            {
                "missing": len(question.missing),
                "lambda": question.lam,
                "added": ",".join(sorted(refinement.added)),
                "removed": ",".join(sorted(refinement.removed)),
                "refined_k": refinement.refined_query.k,
            },
            execution.response_ms,
            penalty=refinement.penalty,
            cached=execution.cached,
        )
        return 200, {
            "session_id": session.session_id,
            "response_ms": execution.response_ms,
            "cached": execution.cached,
            "refinement": keyword_refinement_to_dict(refinement),
            "refined_result": self._refined_result(refinement),
        }

    def _handle_combined(self, payload: Mapping[str, Any]) -> tuple[int, dict]:
        session, question, execution = self._ask_whynot(payload, "combined")
        if execution.degraded is not None:
            return 200, self._degraded_whynot_body(session, execution)
        refinement = execution.answer
        session.log.record(
            "combined refinement",
            {
                "missing": len(question.missing),
                "lambda": question.lam,
                "order": refinement.order,
                "refined_k": refinement.refined_query.k,
            },
            execution.response_ms,
            penalty=refinement.penalty,
            cached=execution.cached,
        )
        return 200, {
            "session_id": session.session_id,
            "response_ms": execution.response_ms,
            "cached": execution.cached,
            "refinement": combined_refinement_to_dict(refinement),
            "refined_result": self._refined_result(refinement),
        }

    def _handle_whynot_batch(
        self, payload: Mapping[str, Any]
    ) -> tuple[int, dict]:
        engine = self.server.engine
        self._sync_read_state(payload)
        questions = batch_whynot_questions_from_dict(
            payload, default_weights=engine.default_weights
        )
        batch = self.server.whynot_executor.execute_batch(questions)
        return 200, whynot_batch_execution_to_dict(batch)

    def _handle_close(self, payload: Mapping[str, Any]) -> tuple[int, dict]:
        session_id = str(payload.get("session_id", ""))
        dropped = self.server.sessions.drop(session_id)
        return 200, {"session_id": session_id, "dropped": dropped}

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _resolve_object(self, path: str):
        """Resolve ``/api/objects/<oid-or-name>`` to a database object.

        Unknown ids and names become a structured 404 *here*, at the
        lookup site — the method dispatchers deliberately have no
        blanket ``KeyError`` handler, so an internal bug elsewhere still
        surfaces as a 500 rather than masquerading as a client error.
        """
        reference = unquote(path[len("/api/objects/") :])
        if not reference:
            raise _RequestError(400, "object id or name required")
        database = self.server.engine.database
        try:
            oid: int | None = int(reference)
        except ValueError:
            oid = None
        try:
            if oid is not None:
                # A numeric reference is an oid first — but names are
                # arbitrary strings, so an object *named* "7100" stays
                # reachable when no object carries that id.
                try:
                    return database.get(oid)
                except KeyError:
                    named = database.find_by_name(reference)
                    if named is not None:
                        return named
                    raise
            return database.resolve(reference)
        except KeyError as exc:
            raise _RequestError(404, _keyerror_message(exc)) from None

    def _read_json(self) -> Mapping[str, Any]:
        length = int(self.headers.get("Content-Length", "0") or "0")
        if length <= 0:
            raise _RequestError(400, "request body required")
        if length > _MAX_BODY_BYTES:
            raise _RequestError(413, "request body too large")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _RequestError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _RequestError(400, "request body must be a JSON object")
        return payload

    def _get_session(self, session_id: str):
        if not session_id:
            raise _RequestError(400, "session_id required")
        try:
            return self.server.sessions.get(session_id)
        except KeyError as exc:
            raise _RequestError(404, str(exc)) from None

    def _readiness(self) -> tuple[int, dict]:
        """``GET /api/health/ready``: can this server serve *fully*?

        503 while the WAL circuit breaker is open (advertised read-only
        degraded mode — a load balancer should prefer healthy
        primaries); 200 otherwise, always with the full detail: breaker
        state, in-flight gauge and (on a follower) the replica's tail
        position, so operators see *why* readiness flipped.
        """
        server = self.server
        breaker = server.breaker
        degraded = breaker is not None and breaker.state != CLOSED
        body: dict[str, Any] = {
            "status": "degraded" if degraded else "ok",
            "role": "follower" if server.follower is not None else "primary",
            "generation": server.engine.generation,
            "resilience": server.resilience_stats(),
        }
        if server.follower is not None:
            body["follower"] = server.follower.to_dict()
        return (503 if degraded else 200), body

    def _send_json(
        self,
        status: int,
        payload: Mapping[str, Any],
        *,
        retry_after: float | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            # An integral number of seconds, rounded up: "Retry-After: 0"
            # would invite an immediate hammer.
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after))))
        self.end_headers()
        self.wfile.write(body)


def serve_forever(
    engine: YaskEngine,
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    follower: FollowerEngine | None = None,
    snapshot_every: int | None = None,
    snapshot_interval_secs: float | None = None,
    max_inflight: int | None = None,
    cache_skyband: int = 8,
) -> None:
    """Blocking entry point used by ``yask serve`` and ``yask follow``."""
    server = YaskHTTPServer(
        engine,
        host=host,
        port=port,
        follower=follower,
        snapshot_every=snapshot_every,
        snapshot_interval_secs=snapshot_interval_secs,
        max_inflight=max_inflight,
        cache_skyband=cache_skyband,
    )
    role = "follower" if follower is not None else "server"
    print(f"YASK {role} listening on {server.endpoint}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()
