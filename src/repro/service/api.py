"""The YASK query processor facade (Fig. 1's server-side "Query Processor").

:class:`YaskEngine` wires together everything the architecture diagram
shows on the server: the R-tree based indexes built over the object
database, the spatial keyword top-k query engine, and the why-not engine
with its explanation generator and two refinement modules.  The HTTP
server (:mod:`repro.service.server`), the CLI and the examples all drive
this one class; embedding applications can use it directly without any
service plumbing.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, AbstractSet, Iterable, Mapping, Sequence

from repro import concurrency
from repro.core.geometry import Point
from repro.core.mutations import (
    AppliedBatch,
    MutableDatabase,
    Mutation,
    MutationError,
    ReadWriteLock,
)
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.query import DEFAULT_WEIGHTS, QueryResult, SpatialKeywordQuery, Weights
from repro.core.scoring import Scorer
from repro.core.sharding import ShardRouter
from repro.core.topk import BestFirstTopK, BruteForceTopK, TopKEngine
from repro.index.irtree import IRTree
from repro.index.kcrtree import KcRTree
from repro.index.setrtree import SetRTree
from repro.text.similarity import (
    JACCARD,
    CosineTfIdfSimilarity,
    JaccardSimilarity,
    SetSimilarityModel,
    TextSimilarityModel,
)
from repro.whynot.engine import WhyNotAnswer, WhyNotEngine

if TYPE_CHECKING:  # imported lazily: the executor fronts this module
    from repro.service.executor import WhyNotQuestion
    from repro.service.wal import WriteAheadLog
from repro.whynot.explanation import WhyNotExplanation
from repro.whynot.keyword import KeywordRefinement
from repro.whynot.preference import PreferenceRefinement

__all__ = ["MutationReport", "TimedResult", "YaskEngine"]


@dataclass(frozen=True, slots=True)
class TimedResult:
    """A value paired with its server-side response time (Fig. 4, Panel 5)."""

    value: object
    response_ms: float


@dataclass(frozen=True, slots=True)
class MutationReport:
    """What one :meth:`YaskEngine.apply_mutations` call did.

    ``change`` carries the applied batch (and its
    :class:`~repro.core.mutations.BatchSummary`) so the serving tier can
    run scoped cache invalidation against exactly what moved; the scalar
    fields are the wire-friendly view ``to_dict`` serialises.

    A *deduplicated* report (``deduplicated=True``, ``change=None``)
    means the batch token was already committed: nothing moved, and
    ``generation`` is the generation the original commit produced — the
    answer an idempotent retry needs.
    """

    change: AppliedBatch | None
    objects: int
    kernel: dict | None
    indexes_rebuilt: tuple[str, ...]
    response_ms: float
    deduplicated: bool = False
    dedup_generation: int = 0

    @property
    def generation(self) -> int:
        if self.change is None:
            return self.dedup_generation
        return self.change.generation

    def to_dict(self) -> dict:
        if self.change is None:
            inserted = updated = deleted = 0
        else:
            inserted = self.change.inserted_count
            updated = self.change.updated_count
            deleted = self.change.deleted_count
        return {
            "generation": self.generation,
            "inserted": inserted,
            "updated": updated,
            "deleted": deleted,
            "objects": self.objects,
            "kernel": self.kernel,
            "indexes_rebuilt": list(self.indexes_rebuilt),
            "response_ms": self.response_ms,
            "deduplicated": self.deduplicated,
        }


class YaskEngine:
    """The complete YASK server-side query processor.

    Parameters
    ----------
    database:
        The spatial object database ``D``.
    text_model:
        Textual similarity model; Jaccard (the paper's Eqn. 2 default)
        enables the SetR-tree engine and both why-not modules.  A
        :class:`CosineTfIdfSimilarity` switches the top-k engine to the
        IR-tree of [4]; the why-not keyword module then falls back to
        exhaustive ranking (its KcR-tree bounds are Jaccard-specific).
    default_weights:
        The server-side preference parameter: "the system ... leaves the
        weighting vector ~w as a system parameter on the server.  In the
        default setting ... ⟨0.5, 0.5⟩" (Section 3.2).
    max_entries:
        R-tree fanout for every index built.
    shards:
        ``None`` (default) keeps the single-index engine.  An integer
        partitions the database into that many disjoint spatial shards
        (:mod:`repro.core.sharding`): top-k queries run scatter-gather
        with shard-bound skipping
        (:class:`~repro.service.sharded.ShardedEngine` replaces the
        best-first engine) and the why-not modules' full-database rank
        scans prune whole shards — all bit-for-bit identical to the
        unsharded engine.  ``shards=1`` exercises the sharded machinery
        with a single shard (the E12 scatter baseline).  Requires a
        text model with a columnar kernel (Jaccard/Dice/Overlap) and is
        mutually exclusive with ``use_index=False`` (the brute-force
        oracle ablation).
    partitioner:
        ``"grid"`` (spatial quantile tiles, default) or
        ``"round-robin"`` (the spatially incoherent ablation).
    shard_workers:
        Scatter pool width for the sharded engine (``None`` = one per
        shard, capped by the CPU count; single-core hosts therefore run
        the sequential threshold-adaptive gather).  The string
        ``"proc"`` selects the process worker tier instead
        (:mod:`repro.service.procpool`): one long-lived worker process
        per shard scanning shared-memory kernel columns, escaping the
        GIL entirely.  Results are bit-for-bit identical on every
        path.
    index_rebuild_slack:
        Live-mutation rebuild fallback sensitivity: after a mutation
        batch, any R-tree taller than its STR bulk-load ideal by more
        than this many levels is bulk-reloaded in place.  ``1``
        (default) tolerates the one extra level Guttman insertion
        typically costs; ``0`` rebuilds aggressively (churn-heavy
        workloads that must keep pruning bounds tight).
    wal:
        A :class:`~repro.service.wal.WriteAheadLog` to attach: every
        mutation batch is durably appended *before* it is applied, so a
        crash at any point reconstructs this engine exactly
        (:func:`repro.service.wal.recover_engine`).  Requires a
        mutation-capable (non-IR-tree) configuration, and the log's
        last generation must equal this engine's — recovery replays the
        log *before* attaching.
    base_generation:
        The generation this engine's state already embodies — the
        snapshot generation when recovering.  The mutation counter
        resumes from here so logged generations stay gap-free across
        restarts.
    batch_tokens:
        Seed map of idempotency token → committed generation, restored
        from the write-ahead log on recovery so client mutation retries
        stay deduplicated across restarts.
    """

    def __init__(
        self,
        database: SpatialDatabase,
        *,
        text_model: TextSimilarityModel = JACCARD,
        default_weights: Weights = DEFAULT_WEIGHTS,
        max_entries: int = 32,
        use_index: bool = True,
        max_edit_count: int | None = None,
        candidate_budget: int | None = None,
        shards: int | None = None,
        partitioner: str = "grid",
        shard_workers: int | str | None = None,
        index_rebuild_slack: int = 1,
        wal: "WriteAheadLog | None" = None,
        base_generation: int = 0,
        batch_tokens: Mapping[str, int] | None = None,
    ) -> None:
        self._database = database
        self._text_model = text_model
        self._default_weights = default_weights

        self._shard_router: ShardRouter | None = None
        if shards is not None:
            if not use_index:
                # The two requests contradict: use_index=False asks for
                # the brute-force oracle engine, shards for the pruned
                # scatter-gather.  Silently preferring either would
                # corrupt ablation measurements, so refuse.
                raise ValueError(
                    "shards and use_index=False are mutually exclusive; "
                    "benchmark the scatter baseline with shards=1 instead"
                )
            # Raises for models without a columnar kernel — sharded
            # scans are built on the kernel's flat columns.
            self._shard_router = ShardRouter(
                database,
                shards=shards,
                partitioner=partitioner,
                text_model=text_model,
            )
        self._scorer = Scorer(
            database, text_model=text_model, shard_router=self._shard_router
        )

        self._set_rtree: SetRTree | None = None
        self._ir_tree: IRTree | None = None
        self._sharded_engine = None
        self._topk_engine: TopKEngine
        if self._shard_router is not None:
            from repro.service.sharded import ShardedEngine

            worker_pool = None
            max_workers = shard_workers
            if isinstance(shard_workers, str):
                if shard_workers != "proc":
                    raise ValueError(
                        f"unknown shard_workers mode {shard_workers!r}; "
                        "expected an integer or 'proc'"
                    )
                from repro.service.procpool import ShardWorkerPool

                worker_pool = ShardWorkerPool(self._shard_router)
                max_workers = None
            self._sharded_engine = ShardedEngine(
                self._shard_router,
                self._scorer,
                max_workers=max_workers,
                worker_pool=worker_pool,
            )
            self._topk_engine = self._sharded_engine
        elif not use_index:
            self._topk_engine = BruteForceTopK(self._scorer)
        elif isinstance(text_model, SetSimilarityModel):
            self._set_rtree = SetRTree.build(
                database, text_model=text_model, max_entries=max_entries
            )
            self._topk_engine = BestFirstTopK(self._set_rtree, self._scorer)
        elif isinstance(text_model, CosineTfIdfSimilarity):
            self._ir_tree = IRTree.build(
                database, text_model=text_model, max_entries=max_entries
            )
            self._topk_engine = BestFirstTopK(self._ir_tree, self._scorer)
        else:
            self._topk_engine = BruteForceTopK(self._scorer)

        # The explanation generator's counting queries are served by a
        # SetR-tree when the ranking model is set-based (the counts must
        # agree with the ranking model's similarities); otherwise the
        # generator falls back to database scans.
        if self._set_rtree is None and isinstance(text_model, SetSimilarityModel):
            self._set_rtree = SetRTree.build(
                database, text_model=text_model, max_entries=max_entries
            )

        self._max_entries = max_entries
        self._kcr_tree = KcRTree.build(database, max_entries=max_entries)
        self._whynot = WhyNotEngine(
            self._scorer,
            set_rtree=self._set_rtree,
            kcr_tree=self._kcr_tree,
            use_kcr_bounds=isinstance(text_model, JaccardSimilarity),
            max_edit_count=max_edit_count,
            candidate_budget=candidate_budget,
        )

        # ---- Live-mutation tier -------------------------------------
        # Readers (queries, why-not answering) share the lock; mutation
        # batches are exclusive, so a search never observes a
        # half-applied batch.  The IR-tree path is the one structure
        # that cannot be maintained incrementally — its tf-idf weights
        # depend on corpus-wide document frequencies, so every insert
        # would reweigh every node — and mutations are refused there.
        # Level 20 in the documented hierarchy: above the snapshot and
        # follower locks, below the WAL lock (apply_mutations holds the
        # write side across wal.append — fsync there is the write-ahead
        # guarantee, hence fsync_safe).
        self._lock = ReadWriteLock(
            name="engine.rw", level=concurrency.LEVEL_ENGINE, fsync_safe=True
        )
        self._indexes_rebuilt = 0
        if index_rebuild_slack < 0:
            raise ValueError("index_rebuild_slack must be non-negative")
        self._index_rebuild_slack = index_rebuild_slack
        if base_generation < 0:
            raise ValueError("base_generation must be non-negative")
        if self._ir_tree is None:
            kernel = self._scorer.kernel
            self._mutable: MutableDatabase | None = MutableDatabase(
                database,
                model_code=kernel.model_code if kernel is not None else None,
                start_generation=base_generation,
                tokens=batch_tokens,
            )
            if kernel is not None:
                self._mutable.register_listener(kernel)
            if self._shard_router is not None:
                self._mutable.register_listener(self._shard_router)
                # The worker pool replays the router's per-shard deltas,
                # so it must observe each batch *after* the router has
                # routed it (listener order is delivery order).
                pool = self.worker_pool
                if pool is not None:
                    self._mutable.register_listener(pool)
        else:
            self._mutable = None
            if base_generation:
                raise MutationError(
                    "an IR-tree engine cannot resume a mutation history: "
                    "it does not support mutations"
                )
        self._wal: "WriteAheadLog | None" = None
        if wal is not None:
            self.attach_wal(wal)

    def close(self) -> None:
        """Release the scatter pool and flush any attached log (idempotent).

        Unsharded engines hold no threads and need no teardown; the
        HTTP server and the CLI batch paths call this alongside the
        executor pools' shutdown.
        """
        if self._sharded_engine is not None:
            self._sharded_engine.close()
        if self._wal is not None:
            self._wal.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def database(self) -> SpatialDatabase:
        return self._database

    @property
    def scorer(self) -> Scorer:
        return self._scorer

    @property
    def kernel(self):
        """The scorer's columnar kernel (None for non-set text models).

        Its :class:`~repro.core.kernel.KernelStats` counters surface
        through ``GET /api/stats`` so operators can see how much work
        the compute tier under the result caches actually performs.
        """
        return self._scorer.kernel

    @property
    def shard_router(self) -> ShardRouter | None:
        """The shard router (None when the engine is unsharded).

        Its :class:`~repro.core.sharding.ShardStats` — scatter/merge
        timings and shard scan/skip counters — surface through
        ``GET /api/stats`` as the ``shards`` section.
        """
        return self._shard_router

    @property
    def worker_pool(self):
        """The process worker pool (None unless ``shard_workers="proc"``).

        Its :meth:`~repro.service.procpool.ShardWorkerPool.to_dict`
        surfaces through ``GET /api/stats`` as the ``procpool`` section.
        """
        if self._sharded_engine is None:
            return None
        return self._sharded_engine.worker_pool

    @property
    def default_weights(self) -> Weights:
        return self._default_weights

    @property
    def whynot(self) -> WhyNotEngine:
        return self._whynot

    @property
    def topk_engine(self) -> TopKEngine:
        """The active top-k engine (BestFirstTopK exposes ``.stats``)."""
        return self._topk_engine

    @property
    def set_rtree(self) -> SetRTree | None:
        return self._set_rtree

    @property
    def kcr_tree(self) -> KcRTree:
        return self._kcr_tree

    @property
    def ir_tree(self) -> IRTree | None:
        return self._ir_tree

    # ------------------------------------------------------------------
    # Query construction
    # ------------------------------------------------------------------
    def make_query(
        self,
        loc: Point,
        keywords: Iterable[str] | AbstractSet[str],
        k: int,
        *,
        weights: Weights | None = None,
    ) -> SpatialKeywordQuery:
        """Build a query, defaulting the weights to the server parameter."""
        return SpatialKeywordQuery(
            loc=loc,
            doc=frozenset(keywords),
            k=k,
            weights=weights if weights is not None else self._default_weights,
        )

    # ------------------------------------------------------------------
    # Spatial keyword top-k querying
    # ------------------------------------------------------------------
    def query(self, query: SpatialKeywordQuery) -> QueryResult:
        """Execute a prepared spatial keyword top-k query."""
        with self._lock.read():
            return self._topk_engine.search(query)

    def read_view(self):
        """A shared-read context: no mutation batch applies inside it.

        Lets a caller pair several reads — e.g. the current generation
        and a query result — into one consistent snapshot.  Nested read
        acquisition (calling :meth:`query` inside the view) is
        deadlock-free by the readers-preference lock design.
        """
        return self._lock.read()

    def top_k(
        self,
        loc: Point,
        keywords: Iterable[str] | AbstractSet[str],
        k: int,
        *,
        weights: Weights | None = None,
    ) -> QueryResult:
        """Convenience: build and execute a top-k query in one step."""
        return self.query(self.make_query(loc, keywords, k, weights=weights))

    def query_batch(
        self,
        queries: Sequence[SpatialKeywordQuery],
        *,
        max_workers: int = 8,
    ) -> list[TimedResult]:
        """Execute many queries against a one-shot worker pool, in order.

        The cache-free batch entry point for embedding applications that
        drive the engine directly; every index is immutable after
        construction, so concurrent traversals are safe.  Each
        :class:`TimedResult` carries that query's own execution time.
        The service does not use this: its transports share a
        :class:`repro.service.executor.QueryExecutor`, which adds
        result caching and in-flight dedup over a persistent pool.
        """
        if not queries:
            return []
        workers = min(max_workers, len(queries))
        if workers <= 1:
            return [self.timed_query(query) for query in queries]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(self.timed_query, queries))

    def timed_query(self, query: SpatialKeywordQuery) -> TimedResult:
        """Execute a query and report the response time (query log panel)."""
        started = time.perf_counter()
        result = self.query(query)
        return TimedResult(
            value=result, response_ms=(time.perf_counter() - started) * 1000.0
        )

    def audit(self, result: QueryResult):
        """Answer "are the returned objects really the best?" (Examples 1-2).

        Re-derives the result with the brute-force Definition-1 oracle
        and cross-checks objects, order and scores; returns an
        :class:`repro.service.audit.AuditReport`.
        """
        from repro.service.audit import audit_result

        with self._lock.read():
            return audit_result(self._scorer, result)

    # ------------------------------------------------------------------
    # Live mutation (insert / update / delete through every layer)
    # ------------------------------------------------------------------
    @property
    def supports_mutations(self) -> bool:
        """Whether this engine accepts :meth:`apply_mutations`.

        False only for the IR-tree (cosine tf-idf) configuration, whose
        corpus-frequency-dependent weights cannot be maintained
        incrementally — rebuild the engine instead.
        """
        return self._mutable is not None

    @property
    def generation(self) -> int:
        """Mutation batches applied so far (0 for a fresh engine)."""
        return self._mutable.generation if self._mutable is not None else 0

    def apply_mutations(
        self,
        mutations: Sequence[Mutation],
        *,
        batch_token: str | None = None,
    ) -> MutationReport:
        """Apply one mutation batch through every layer, atomically.

        Under the exclusive write lock: the database (incremental
        vocabulary interning), the scoring kernel (tombstone + append +
        threshold compaction), the shard router (owning-shard routing,
        widen-only/exact summary refresh) and the R-tree family
        (Guttman insert, shrink-after-delete) are all updated in place;
        a degraded tree is bulk-reloaded.  After this returns, every
        query answer is bit-for-bit what a fresh engine built from the
        new object set would produce.  Serving-tier caches are *not*
        touched here — the caller holds them; pass ``report.change``
        to :meth:`repro.service.executor.QueryExecutor.maintain`
        (patch-on-write: cached answers are carried through the batch
        arithmetically) or ``report.change.summary`` to
        :meth:`repro.service.executor.QueryExecutor.invalidate_scoped`
        (drop-on-write).

        ``batch_token`` makes the call idempotent: a token already seen
        (committed, or a committed no-op) short-circuits under the same
        write lock into a ``deduplicated`` report carrying the original
        generation — a client retry after a lost response re-applies
        nothing.  The token rides the WAL record, so deduplication
        survives recovery and follower re-bootstrap.
        """
        if self._mutable is None:
            raise MutationError(
                "this engine cannot apply mutations: the IR-tree's tf-idf "
                "weights depend on corpus-wide document frequencies; "
                "rebuild the engine with the new object set instead"
            )
        started = time.perf_counter()
        pre_commit = None
        if self._wal is not None:
            from repro.service.protocol import mutation_to_dict

            wal = self._wal
            # The write-ahead step: once normalisation has validated the
            # batch (and proven it is not a net no-op), the raw batch is
            # made durable *before* any in-memory state moves.  A failed
            # append raises WalWriteError out of apply() with the engine
            # untouched — a batch is either logged and applied, or
            # neither.
            payload = [mutation_to_dict(mutation) for mutation in mutations]

            def pre_commit(generation: int, _mutations) -> None:
                wal.append(generation, payload, token=batch_token)

        with self._lock.write():
            if batch_token is not None:
                # Dedup lookup under the same exclusive lock that commits
                # tokens: two concurrent retries of one batch serialise
                # here, so exactly one applies.
                seen = self._mutable.token_generation(batch_token)
                if seen is not None:
                    return MutationReport(
                        change=None,
                        objects=len(self._database),
                        kernel=None,
                        indexes_rebuilt=(),
                        response_ms=(time.perf_counter() - started) * 1000.0,
                        deduplicated=True,
                        dedup_generation=seen,
                    )
            change = self._mutable.apply(
                mutations, pre_commit=pre_commit, token=batch_token
            )
            if change.is_noop:
                rebuilt: tuple[str, ...] = ()
            else:
                for tree in (self._set_rtree, self._kcr_tree):
                    if tree is None:
                        continue
                    for obj in change.removed:
                        tree.delete(obj, obj.loc)
                    # Batched: one deferred summary pass per tree instead
                    # of a count-map merge along every inserted object's
                    # path.
                    tree.insert_batch(
                        (obj, obj.loc) for obj in change.appended
                    )
                rebuilt = self._rebuild_degraded_indexes()
        kernel = self._scorer.kernel
        return MutationReport(
            change=change,
            objects=len(self._database),
            kernel=kernel.mutation_info() if kernel is not None else None,
            indexes_rebuilt=rebuilt,
            response_ms=(time.perf_counter() - started) * 1000.0,
        )

    def _rebuild_degraded_indexes(self) -> tuple[str, ...]:
        """Bulk-reload any tree whose balance degraded (in place).

        Adopting the fresh structure in place keeps every holder of the
        tree reference — the best-first engine, the why-not engine, the
        explanation generator — pointed at the rebuilt index.
        """
        slack = self._index_rebuild_slack
        rebuilt: list[str] = []
        if self._set_rtree is not None and self._set_rtree.balance_degraded(
            slack=slack
        ):
            self._set_rtree.adopt_structure(
                SetRTree.build(
                    self._database,
                    text_model=self._text_model,
                    max_entries=self._max_entries,
                )
            )
            rebuilt.append("set_rtree")
        if self._kcr_tree.balance_degraded(slack=slack):
            self._kcr_tree.adopt_structure(
                KcRTree.build(self._database, max_entries=self._max_entries)
            )
            rebuilt.append("kcr_tree")
        self._indexes_rebuilt += len(rebuilt)
        return tuple(rebuilt)

    def mutation_stats(self) -> dict:
        """The ``GET /api/stats`` mutations section."""
        if self._mutable is None:
            return {"supported": False}
        kernel = self._scorer.kernel
        return {
            "supported": True,
            **self._mutable.to_dict(),
            "kernel": kernel.mutation_info() if kernel is not None else None,
            "indexes_rebuilt": self._indexes_rebuilt,
        }

    # ------------------------------------------------------------------
    # Durability (write-ahead log + snapshots)
    # ------------------------------------------------------------------
    @property
    def wal(self) -> "WriteAheadLog | None":
        """The attached write-ahead log (None for a memory-only engine)."""
        return self._wal

    def attach_wal(self, wal: "WriteAheadLog") -> None:
        """Make every future mutation batch durable through ``wal``.

        The log's last generation must equal this engine's current
        generation: an engine behind the log would re-apply logged
        batches on recovery but skip them live, and an engine ahead
        would log a gap.  :func:`repro.service.wal.recover_engine`
        establishes the invariant by replaying before attaching.
        """
        if self._mutable is None:
            raise MutationError(
                "an IR-tree engine cannot attach a write-ahead log: "
                "it does not support mutations"
            )
        if self._wal is not None:
            raise ValueError("a write-ahead log is already attached")
        if wal.last_generation != self.generation:
            from repro.service.wal import WalError

            raise WalError(
                f"cannot attach: log is at generation {wal.last_generation} "
                f"but the engine is at {self.generation}; recover the "
                "engine from the log (replay) before attaching"
            )
        self._wal = wal

    def snapshot(self) -> dict:
        """Checkpoint the current state into the attached log.

        Writes the full database payload
        (:func:`repro.index.persistence.database_to_dict`) as a
        snapshot covering the current generation, then compacts away
        fully covered segments.  Recovery after this point loads the
        snapshot and replays only the tail.  Returns the log's snapshot
        report (``snapshot``, ``generation``, ``segments_compacted``).
        """
        if self._wal is None:
            from repro.service.wal import WalError

            raise WalError(
                "no write-ahead log attached; snapshots checkpoint a log"
            )
        from repro.index.persistence import database_to_dict

        with self._lock.read():
            generation = self.generation
            payload = database_to_dict(self._database)
        return self._wal.write_snapshot(generation, payload)

    def durability_stats(self) -> dict:
        """The ``GET /api/stats`` durability section (primary side)."""
        if self._wal is None:
            return {"enabled": False}
        return {
            "enabled": True,
            "role": "primary",
            "generation": self.generation,
            **self._wal.to_dict(),
        }

    # ------------------------------------------------------------------
    # Why-not question answering
    # ------------------------------------------------------------------
    def explain(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[int | str | SpatialObject],
        *,
        initial_result: QueryResult | None = None,
    ) -> WhyNotExplanation:
        """Explain why the referenced objects are missing from the result.

        Pass ``initial_result`` (the query's cached top-k result) to
        spare the generator from re-deriving it.
        """
        with self._lock.read():
            return self._whynot.explain(
                query, missing, initial_result=initial_result
            )

    def refine_preference(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[int | str | SpatialObject],
        *,
        lam: float = 0.5,
    ) -> PreferenceRefinement:
        """Preference-adjusted refinement (Definition 2)."""
        with self._lock.read():
            return self._whynot.refine_preference(query, missing, lam=lam)

    def refine_keywords(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[int | str | SpatialObject],
        *,
        lam: float = 0.5,
    ) -> KeywordRefinement:
        """Keyword-adapted refinement (Definition 3)."""
        with self._lock.read():
            return self._whynot.refine_keywords(query, missing, lam=lam)

    def refine_combined(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[int | str | SpatialObject],
        *,
        lam: float = 0.5,
    ):
        """Both refinement functions applied together (Section 3.2:
        "users can apply the two refinement functions simultaneously")."""
        with self._lock.read():
            return self._whynot.refine_combined(query, missing, lam=lam)

    def why_not(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[int | str | SpatialObject],
        *,
        lam: float = 0.5,
        initial_result: QueryResult | None = None,
    ) -> WhyNotAnswer:
        """Full why-not answer: explanation plus both refinement models.

        Pass ``initial_result`` (the query's cached top-k result) to
        spare the explanation generator from re-deriving it.
        """
        with self._lock.read():
            return self._whynot.refine_both(
                query, missing, lam=lam, initial_result=initial_result
            )

    # ------------------------------------------------------------------
    # Why-not dispatch and batching (executor/service substrate)
    # ------------------------------------------------------------------
    def resolve_missing_oids(
        self, references: Sequence[int | str]
    ) -> tuple[int, ...]:
        """Resolve missing-object references to sorted, deduplicated ids.

        The canonical form behind why-not fingerprints: a question
        naming an object and one using its id address the same cache
        entry.  Raises :class:`~repro.whynot.errors.UnknownObjectError`
        for references outside the database.
        """
        with self._lock.read():
            resolved = self._whynot.resolve_missing(references)
        return tuple(sorted(obj.oid for obj in resolved))

    def answer_whynot(
        self,
        question: "WhyNotQuestion",
        *,
        initial_result: QueryResult | None = None,
    ):
        """Dispatch one :class:`WhyNotQuestion` to its module.

        ``initial_result`` (the cached top-k result for the question's
        query) feeds the explanation-bearing models ("full", "explain");
        the pure refiners rank in dual space and ignore it.
        """
        query, missing, lam = question.query, question.missing, question.lam
        if question.model == "full":
            return self.why_not(
                query, missing, lam=lam, initial_result=initial_result
            )
        if question.model == "explain":
            return self.explain(query, missing, initial_result=initial_result)
        if question.model == "preference":
            return self.refine_preference(query, missing, lam=lam)
        if question.model == "keywords":
            return self.refine_keywords(query, missing, lam=lam)
        if question.model == "combined":
            return self.refine_combined(query, missing, lam=lam)
        raise ValueError(f"unknown why-not model {question.model!r}")

    def whynot_batch(
        self,
        questions: Sequence["WhyNotQuestion"],
        *,
        max_workers: int = 8,
    ) -> list[TimedResult]:
        """Answer many why-not questions against a one-shot pool, in order.

        The cache-free batch entry point for embedding applications
        (mirror of :meth:`query_batch`); every index is immutable after
        construction, so concurrent why-not answering is safe.  The
        service does not use this: its transports share a
        :class:`repro.service.executor.WhyNotExecutor`, which adds
        answer caching, in-flight dedup and top-k result reuse.
        """
        if not questions:
            return []

        def timed(question: "WhyNotQuestion") -> TimedResult:
            started = time.perf_counter()
            answer = self.answer_whynot(question)
            return TimedResult(
                value=answer,
                response_ms=(time.perf_counter() - started) * 1000.0,
            )

        workers = min(max_workers, len(questions))
        if workers <= 1:
            return [timed(question) for question in questions]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(timed, questions))
