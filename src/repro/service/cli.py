"""The ``yask`` command line interface.

Subcommands:

* ``yask serve [--host --port --dataset]`` — run the HTTP service.
* ``yask query --x --y --keywords --k [--ws]`` — one-shot top-k query.
* ``yask batch --file queries.json [--workers --repeat]`` — execute a
  file (or stdin) of query payloads through the caching
  :class:`~repro.service.executor.QueryExecutor`.
* ``yask whynot --x --y --keywords --k --missing [--lambda --model]`` —
  one-shot why-not question (explanation + refinement).
* ``yask whynot-batch --file questions.json [--workers --repeat]`` —
  answer a file (or stdin) of why-not question payloads through the
  caching :class:`~repro.service.executor.WhyNotExecutor`.
* ``yask demo`` — print the full demonstration screen (Figs. 3-5) for
  the Carol scenario on the 539-hotel dataset.
* ``yask recover --wal-dir DIR`` — rebuild an engine from a snapshot +
  write-ahead log and print the recovery report.
* ``yask follow --wal-dir DIR`` — serve read-only queries from a
  replica that tails a primary's log directory.

Datasets: ``hotels`` (the 539 Hong Kong hotels), ``coffee`` (Example 1's
cafes) or a path to a JSON file produced by
:func:`repro.datasets.save_json`.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import Sequence

from repro import faults
from repro.core.geometry import Point
from repro.core.objects import SpatialDatabase
from repro.core.query import Weights
from repro.datasets.hotels import GRAND_VICTORIA, coffee_shops, hong_kong_hotels
from repro.datasets.loaders import load_json
from repro.service.api import YaskEngine
from repro.service.executor import QueryExecutor, WhyNotExecutor
from repro.service.panels import render_demo_screen
from repro.service.protocol import (
    ProtocolError,
    batch_execution_to_dict,
    batch_queries_from_dict,
    batch_whynot_questions_from_dict,
    explanation_to_dict,
    keyword_refinement_to_dict,
    preference_refinement_to_dict,
    result_to_dict,
    whynot_batch_execution_to_dict,
)
from repro.service.server import serve_forever
from repro.whynot.errors import WhyNotError

__all__ = ["main", "build_parser", "load_dataset"]


def load_dataset(spec: str) -> SpatialDatabase:
    """Resolve a dataset spec: a builtin name or a JSON file path."""
    if spec == "hotels":
        return hong_kong_hotels()
    if spec == "coffee":
        return coffee_shops()
    return load_json(spec)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="yask",
        description=(
            "YASK: a why-not question answering engine for spatial keyword "
            "query services (PVLDB 2016 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_shard_args(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--shards",
            type=int,
            default=None,
            help=(
                "partition the database into N spatial shards "
                "(scatter-gather top-k + pruned why-not scans; "
                "default: unsharded)"
            ),
        )
        command.add_argument(
            "--partitioner",
            choices=("grid", "round-robin"),
            default="grid",
            help="shard partition strategy (round-robin is the ablation)",
        )
        command.add_argument(
            "--shard-workers",
            type=_shard_workers_arg,
            default=None,
            metavar="N|proc",
            help=(
                "scatter width for the sharded engine: an integer "
                "thread-pool width, or 'proc' for one worker process "
                "per shard over shared-memory kernel columns "
                "(escapes the GIL; default: thread pool sized to the "
                "CPU count)"
            ),
        )

    def add_wal_args(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--wal-dir",
            default=None,
            help=(
                "write-ahead-log directory (enables durability; any "
                "existing snapshot + log is recovered first, and the "
                "given --dataset seeds a log that has neither)"
            ),
        )
        command.add_argument(
            "--fsync",
            choices=("always", "never"),
            default="always",
            help=(
                "WAL fsync policy: always = every batch is on disk "
                "before it is acknowledged; never = leave flushing to "
                "the OS (faster, may lose the tail on power failure)"
            ),
        )

    def add_inflight_arg(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--max-inflight",
            type=int,
            default=None,
            help=(
                "admission-control bound: requests beyond this many "
                "in flight are shed with a structured 503 and a "
                "Retry-After header (default: unbounded)"
            ),
        )

    serve = sub.add_parser("serve", help="run the HTTP service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--dataset", default="hotels")
    add_inflight_arg(serve)
    add_shard_args(serve)
    add_wal_args(serve)
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        help=(
            "write a snapshot (and compact the log) every N mutation "
            "batches; requires --wal-dir"
        ),
    )
    serve.add_argument(
        "--snapshot-interval-secs",
        type=float,
        default=None,
        help=(
            "also snapshot on a wall-clock cadence: every N seconds, if "
            "any batches landed since the last snapshot; combines with "
            "--snapshot-every and requires --wal-dir"
        ),
    )
    serve.add_argument(
        "--cache-skyband",
        type=int,
        default=8,
        help=(
            "skyband width Δ: extra ranked candidates each cached top-k "
            "entry keeps so mutations patch cached answers in O(Δ) "
            "instead of evicting them (0 restores drop-on-write)"
        ),
    )

    def add_query_args(command: argparse.ArgumentParser) -> None:
        command.add_argument("--dataset", default="hotels")
        add_shard_args(command)
        command.add_argument("--x", type=float, required=True)
        command.add_argument("--y", type=float, required=True)
        command.add_argument(
            "--keywords", required=True, help="comma-separated query keywords"
        )
        command.add_argument("--k", type=int, default=3)
        command.add_argument(
            "--ws",
            type=float,
            default=None,
            help="spatial weight (default: server parameter 0.5)",
        )

    def add_deadline_arg(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--deadline-ms",
            type=float,
            default=None,
            help=(
                "time budget in milliseconds: a top-k query degrades to "
                "a partial answer over the shards that responded (with a "
                "'degraded' envelope saying what was skipped); a why-not "
                "question either answers exactly or reports degradation "
                "— never a silently wrong count"
            ),
        )

    query = sub.add_parser("query", help="run one top-k query")
    add_query_args(query)
    add_deadline_arg(query)

    batch = sub.add_parser(
        "batch",
        help="execute a JSON file of top-k queries through the executor",
    )
    batch.add_argument("--dataset", default="hotels")
    add_shard_args(batch)
    batch.add_argument(
        "--file",
        required=True,
        help="path to a JSON list of query payloads "
        '([{"x", "y", "keywords", "k", "ws"?}, ...]), or "-" for stdin',
    )
    batch.add_argument(
        "--workers", type=int, default=8, help="worker-pool width"
    )
    batch.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="execute the workload this many times (repeats hit the cache)",
    )

    whynot_batch = sub.add_parser(
        "whynot-batch",
        help="answer a JSON file of why-not questions through the executor",
    )
    whynot_batch.add_argument("--dataset", default="hotels")
    add_shard_args(whynot_batch)
    whynot_batch.add_argument(
        "--file",
        required=True,
        help="path to a JSON list of why-not question payloads "
        '([{"x", "y", "keywords", "k", "missing", "model"?, "lambda"?, '
        '"ws"?}, ...]), or "-" for stdin',
    )
    whynot_batch.add_argument(
        "--workers", type=int, default=8, help="worker-pool width"
    )
    whynot_batch.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="answer the workload this many times (repeats hit the cache)",
    )

    mutate = sub.add_parser(
        "mutate",
        help="apply a JSON file of insert/update/delete mutations",
    )
    mutate.add_argument("--dataset", default="hotels")
    add_shard_args(mutate)
    mutate.add_argument(
        "--file",
        required=True,
        help="path to a JSON list of mutation payloads "
        '([{"op": "insert"|"update"|"delete", "oid", "x"?, "y"?, '
        '"keywords"?, "name"?}, ...]), or "-" for stdin',
    )
    mutate.add_argument(
        "--batch-size",
        type=int,
        default=0,
        help="apply the file in batches of this many mutations "
        "(0 = one atomic batch)",
    )
    add_wal_args(mutate)

    whynot = sub.add_parser("whynot", help="ask a why-not question")
    add_query_args(whynot)
    add_deadline_arg(whynot)
    whynot.add_argument(
        "--missing",
        required=True,
        help="comma-separated object names or ids expected in the result",
    )
    whynot.add_argument("--lambda", dest="lam", type=float, default=0.5)
    whynot.add_argument(
        "--model",
        choices=("preference", "keywords", "both"),
        default="both",
    )

    demo = sub.add_parser("demo", help="print the demonstration screens")
    demo.add_argument("--width", type=int, default=64)

    stats = sub.add_parser(
        "stats", help="print dataset and index structure statistics"
    )
    stats.add_argument("--dataset", default="hotels")
    stats.add_argument("--max-entries", type=int, default=32)

    audit = sub.add_parser(
        "audit",
        help="run a top-k query and verify the result against the oracle",
    )
    add_query_args(audit)

    recover = sub.add_parser(
        "recover",
        help="rebuild an engine from a WAL directory and print the report",
    )
    recover.add_argument("--wal-dir", required=True)
    recover.add_argument(
        "--dataset",
        default=None,
        help=(
            "seed dataset for a log with no snapshot (must be the same "
            "database the log was started from; ignored when a snapshot "
            "exists)"
        ),
    )
    recover.add_argument(
        "--snapshot",
        action="store_true",
        help="write a fresh snapshot after recovery (compacts the log)",
    )

    follow = sub.add_parser(
        "follow",
        help="serve read-only queries by tailing a primary's WAL directory",
    )
    follow.add_argument("--wal-dir", required=True)
    follow.add_argument("--host", default="127.0.0.1")
    follow.add_argument("--port", type=int, default=8081)
    add_inflight_arg(follow)
    follow.add_argument(
        "--dataset",
        default=None,
        help="seed dataset for a log with no snapshot",
    )
    add_shard_args(follow)

    return parser


def _parse_keywords(raw: str) -> frozenset[str]:
    keywords = frozenset(part.strip() for part in raw.split(",") if part.strip())
    if not keywords:
        raise SystemExit("at least one query keyword is required")
    return keywords


def _parse_missing(raw: str) -> list[int | str]:
    refs: list[int | str] = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        refs.append(int(part) if part.isdigit() else part)
    if not refs:
        raise SystemExit("at least one missing object is required")
    return refs


def _shard_workers_arg(value: str) -> "int | str":
    """``--shard-workers`` values: a positive integer or ``proc``."""
    if value == "proc":
        return "proc"
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'proc', got {value!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError("worker count must be at least 1")
    return workers


def _make_engine(args: argparse.Namespace) -> YaskEngine:
    return YaskEngine(
        load_dataset(args.dataset),
        shards=getattr(args, "shards", None),
        partitioner=getattr(args, "partitioner", "grid"),
        shard_workers=getattr(args, "shard_workers", None),
    )


def _make_durable_engine(args: argparse.Namespace) -> YaskEngine:
    """Build the engine, recovering from ``--wal-dir`` when given."""
    if getattr(args, "wal_dir", None) is None:
        return _make_engine(args)
    from repro.service.wal import WalError, recover_engine

    try:
        engine, report = recover_engine(
            args.wal_dir,
            database=load_dataset(args.dataset),
            fsync=args.fsync,
            shards=getattr(args, "shards", None),
            partitioner=getattr(args, "partitioner", "grid"),
            shard_workers=getattr(args, "shard_workers", None),
        )
    except WalError as exc:
        raise SystemExit(f"recovery failed: {exc}")
    print(
        f"recovered generation {report.generation} from {args.wal_dir} "
        f"({report.records_replayed} record(s) replayed)",
        file=sys.stderr,
    )
    return engine


def _deadline_of(args: argparse.Namespace) -> faults.Deadline | None:
    budget = getattr(args, "deadline_ms", None)
    if budget is None:
        return None
    if budget <= 0:
        raise SystemExit("--deadline-ms must be positive")
    return faults.Deadline(budget)


def _run_query(args: argparse.Namespace) -> int:
    engine = _make_engine(args)
    deadline = _deadline_of(args)
    try:
        weights = Weights.from_spatial(args.ws) if args.ws is not None else None
        query = engine.make_query(
            Point(args.x, args.y), _parse_keywords(args.keywords), args.k,
            weights=weights,
        )
        scope = (
            faults.deadline_scope(deadline)
            if deadline is not None
            else contextlib.nullcontext()
        )
        with scope:
            timed = engine.timed_query(query)
    finally:
        engine.close()
    payload = result_to_dict(timed.value)
    if deadline is not None and deadline.degraded:
        payload["degraded"] = deadline.to_dict()
        print(
            f"degraded: {deadline.to_dict()['shards_skipped']} shard(s) "
            "skipped past the deadline",
            file=sys.stderr,
        )
    print(json.dumps(payload, indent=2))
    print(f"executed in {timed.response_ms:.2f} ms", file=sys.stderr)
    return 0


def _load_workload(args: argparse.Namespace, envelope_key: str) -> dict:
    """Read a JSON workload file (or stdin) for the batch subcommands.

    Accepts both the bare list and the HTTP batch envelope
    (``{envelope_key: [...]}``).
    """
    if args.repeat < 1:
        raise SystemExit("--repeat must be at least 1")
    if args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    if args.file == "-":
        raw = sys.stdin.read()
    else:
        try:
            with open(args.file, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError as exc:
            raise SystemExit(f"cannot read {args.file}: {exc}")
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"invalid JSON in {args.file}: {exc}")
    if isinstance(payload, list):
        payload = {envelope_key: payload}
    return payload


def _run_batch(args: argparse.Namespace) -> int:
    payload = _load_workload(args, "queries")
    engine = _make_engine(args)
    try:
        queries = batch_queries_from_dict(
            payload, default_weights=engine.default_weights
        )
    except ProtocolError as exc:
        raise SystemExit(f"bad batch payload: {exc}")
    executor = QueryExecutor(engine, max_workers=args.workers)
    try:
        batches = [
            executor.execute_batch(queries) for _ in range(args.repeat)
        ]
    finally:
        executor.close()
        engine.close()
    stats = executor.stats()
    print(
        json.dumps(
            {
                "batches": [batch_execution_to_dict(batch) for batch in batches],
                "cache": stats.to_dict(),
            },
            indent=2,
        )
    )
    print(
        f"{args.repeat} batch(es) of {len(queries)} queries: "
        f"{stats.hits + stats.inflight_waits} served without execution "
        f"(hit rate {stats.hit_rate:.0%})",
        file=sys.stderr,
    )
    return 0


def _run_whynot_batch(args: argparse.Namespace) -> int:
    payload = _load_workload(args, "questions")
    engine = _make_engine(args)
    try:
        questions = batch_whynot_questions_from_dict(
            payload, default_weights=engine.default_weights
        )
    except ProtocolError as exc:
        raise SystemExit(f"bad batch payload: {exc}")
    topk = QueryExecutor(engine, max_workers=args.workers)
    executor = WhyNotExecutor(engine, topk, max_workers=args.workers)
    try:
        batches = [
            executor.execute_batch(questions) for _ in range(args.repeat)
        ]
    finally:
        executor.close()
        topk.close()
        engine.close()
    stats = executor.stats()
    print(
        json.dumps(
            {
                "batches": [
                    whynot_batch_execution_to_dict(batch) for batch in batches
                ],
                "cache": topk.stats().to_dict(),
                "whynot_cache": stats.to_dict(),
            },
            indent=2,
        )
    )
    errors = sum(1 for batch in batches for e in batch if not e.ok)
    print(
        f"{args.repeat} batch(es) of {len(questions)} why-not questions: "
        f"{stats.hits + stats.inflight_waits} served without recomputation "
        f"(hit rate {stats.hit_rate:.0%}), {errors} rejected",
        file=sys.stderr,
    )
    return 0


def _run_mutate(args: argparse.Namespace) -> int:
    """Apply a mutation workload to a freshly built engine and report.

    The in-process twin of ``POST /api/mutations`` — useful for smoke
    testing ingest workloads and for measuring incremental-apply cost on
    a dataset before wiring it into a serving deployment.
    """
    from repro.core.mutations import MutationError
    from repro.service.protocol import mutations_from_dict

    if args.batch_size < 0:
        raise SystemExit("--batch-size must be non-negative")
    args.repeat = 1
    args.workers = 1
    payload = _load_workload(args, "mutations")
    engine = _make_durable_engine(args)
    try:
        mutations = mutations_from_dict(payload, max_mutations=None)
    except ProtocolError as exc:
        engine.close()
        raise SystemExit(f"bad mutation payload: {exc}")
    size = args.batch_size or len(mutations)
    reports = []
    try:
        for start in range(0, len(mutations), size):
            report = engine.apply_mutations(mutations[start : start + size])
            reports.append(report.to_dict())
    except MutationError as exc:
        print(f"mutation error: {exc}", file=sys.stderr)
        return 2
    finally:
        engine.close()
    print(
        json.dumps(
            {"batches": reports, "stats": engine.mutation_stats()}, indent=2
        )
    )
    applied = sum(
        report["inserted"] + report["updated"] + report["deleted"]
        for report in reports
    )
    print(
        f"applied {applied} mutation(s) in {len(reports)} batch(es); "
        f"database now holds {len(engine.database)} objects",
        file=sys.stderr,
    )
    return 0


def _run_whynot(args: argparse.Namespace) -> int:
    engine = _make_engine(args)
    deadline = _deadline_of(args)
    weights = Weights.from_spatial(args.ws) if args.ws is not None else None
    query = engine.make_query(
        Point(args.x, args.y), _parse_keywords(args.keywords), args.k,
        weights=weights,
    )
    missing = _parse_missing(args.missing)
    scope = (
        faults.strict_deadline_scope(deadline)
        if deadline is not None
        else contextlib.nullcontext()
    )
    try:
        with scope:
            payload: dict = {
                "explanation": explanation_to_dict(
                    engine.explain(query, missing)
                )
            }
            if args.model in ("preference", "both"):
                refinement = engine.refine_preference(
                    query, missing, lam=args.lam
                )
                payload["preference"] = preference_refinement_to_dict(
                    refinement
                )
            if args.model in ("keywords", "both"):
                refinement = engine.refine_keywords(
                    query, missing, lam=args.lam
                )
                payload["keywords"] = keyword_refinement_to_dict(refinement)
    except faults.DeadlineExceeded as exc:
        deadline.note_failed("why-not answering exceeded the deadline")
        print(
            json.dumps(
                {"degraded": deadline.to_dict(), "error": str(exc)}, indent=2
            )
        )
        print(f"why-not degraded: {exc}", file=sys.stderr)
        return 3
    except WhyNotError as exc:
        print(f"why-not error: {exc}", file=sys.stderr)
        return 2
    finally:
        engine.close()
    print(json.dumps(payload, indent=2))
    return 0


def _run_demo(args: argparse.Namespace) -> int:
    database = hong_kong_hotels()
    engine = YaskEngine(database)
    venue = Point(114.1722, 22.2975)  # the "conference venue" of Example 2
    result = engine.top_k(venue, {"clean", "comfortable"}, k=3)
    answer = engine.why_not(result.query, [GRAND_VICTORIA])
    print(render_demo_screen(database, result, answer, width=args.width))
    return 0


def _run_stats(args: argparse.Namespace) -> int:
    from repro.index.stats import tree_statistics

    database = load_dataset(args.dataset)
    engine = YaskEngine(database, max_entries=args.max_entries)
    print("dataset:")
    for key, value in database.summary().items():
        print(f"  {key} = {value}")
    print("SetR-tree:")
    print(f"  {tree_statistics(engine.set_rtree).describe()}")
    print("KcR-tree:")
    print(f"  {tree_statistics(engine.kcr_tree).describe()}")
    return 0


def _run_recover(args: argparse.Namespace) -> int:
    """Recover an engine from a log directory and print the report.

    Exit code 2 signals corruption (or a log that needs a seed
    database), distinguishing "the log is bad" from transient errors.
    """
    from repro.service.wal import WalError, recover_engine

    database = load_dataset(args.dataset) if args.dataset else None
    try:
        engine, report = recover_engine(args.wal_dir, database=database)
    except WalError as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 2
    try:
        payload = report.to_dict()
        if args.snapshot:
            engine.snapshot()
            payload["durability"] = engine.durability_stats()
    finally:
        engine.close()
    print(json.dumps(payload, indent=2))
    return 0


def _run_follow(args: argparse.Namespace) -> int:
    from repro.service.wal import FollowerEngine, WalError

    database = load_dataset(args.dataset) if args.dataset else None
    try:
        follower = FollowerEngine(
            args.wal_dir,
            database=database,
            shards=args.shards,
            partitioner=args.partitioner,
            shard_workers=getattr(args, "shard_workers", None),
        )
    except WalError as exc:
        print(f"follower bootstrap failed: {exc}", file=sys.stderr)
        return 2
    serve_forever(
        follower.engine,
        host=args.host,
        port=args.port,
        follower=follower,
        max_inflight=args.max_inflight,
    )
    return 0


def _run_audit(args: argparse.Namespace) -> int:
    engine = _make_engine(args)
    try:
        weights = Weights.from_spatial(args.ws) if args.ws is not None else None
        result = engine.top_k(
            Point(args.x, args.y), _parse_keywords(args.keywords), args.k,
            weights=weights,
        )
        report = engine.audit(result)
    finally:
        engine.close()
    print(report.describe())
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        if args.snapshot_every is not None and args.wal_dir is None:
            raise SystemExit("--snapshot-every requires --wal-dir")
        if args.snapshot_interval_secs is not None and args.wal_dir is None:
            raise SystemExit("--snapshot-interval-secs requires --wal-dir")
        serve_forever(
            _make_durable_engine(args),
            host=args.host,
            port=args.port,
            snapshot_every=args.snapshot_every,
            snapshot_interval_secs=args.snapshot_interval_secs,
            max_inflight=args.max_inflight,
            cache_skyband=args.cache_skyband,
        )
        return 0
    if args.command == "query":
        return _run_query(args)
    if args.command == "batch":
        return _run_batch(args)
    if args.command == "mutate":
        return _run_mutate(args)
    if args.command == "whynot":
        return _run_whynot(args)
    if args.command == "whynot-batch":
        return _run_whynot_batch(args)
    if args.command == "demo":
        return _run_demo(args)
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "audit":
        return _run_audit(args)
    if args.command == "recover":
        return _run_recover(args)
    if args.command == "follow":
        return _run_follow(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
