"""Durability for the live-mutation tier: WAL, snapshots, recovery, followers.

PR 5 made the engine mutable but memory-only: a restart lost every
batch.  This module gives the monotone-generation mutation tier a
crash-safe life cycle —

* :class:`WriteAheadLog` — a segmented append-only log of mutation
  batches.  Each record frames the *raw* (pre-normalisation) batch with
  a length + CRC32 header, so replay pushes it through the exact same
  sequential-semantics normalisation the original apply used.  Segments
  are named by the generation of their first record; a writer opening a
  log truncates a torn tail (a crash mid-``write``) back to the last
  intact record.  ``fsync`` policy is a knob: ``"always"`` (default)
  syncs every append — a crashed *machine* loses nothing; ``"never"``
  leaves syncing to the OS — a crashed *process* still loses nothing
  (the buffer is flushed per append), only a power cut can.
* Snapshots + manifest — :meth:`WriteAheadLog.write_snapshot` persists
  the full database state (via :func:`repro.index.persistence.database_to_dict`)
  at generation ``G`` and atomically rewrites ``MANIFEST.json``;
  segments fully covered by ``G`` are then compacted away.
* :func:`recover_engine` — snapshot + replay: load the manifest's
  snapshot (or the caller's seed database when the log predates any
  snapshot), bulk-replay every logged record with generation ``> G``
  at the database layer, then build a fresh
  :class:`~repro.service.api.YaskEngine` — indexes and kernel — once,
  over the final state.  Any crash point reconstructs the exact
  pre-crash engine —
  the crash-point property suite
  (``tests/properties/test_prop_recovery.py``) proves bit-for-bit top-k
  and why-not parity for *every* record and byte boundary.
* :class:`FollowerEngine` — a read-only replica tailing the same log
  directory.  It never truncates (the primary owns the tail) and serves
  reads under a ``min_generation`` consistency token: a client that
  just wrote at generation ``g`` can demand its reads reflect ``g``.

The write path ordering is the classic WAL contract, threaded through
:meth:`MutableDatabase.apply`'s ``pre_commit`` hook: normalise/validate
→ append to the log (flush + fsync per policy) → mutate the engine.  A
failed append truncates back to the pre-append offset and raises
:class:`WalWriteError` (HTTP 503) with the engine untouched — a batch
is either durable and applied, or neither.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping, Sequence

from repro import concurrency, faults
from repro.index.persistence import IndexPersistenceError, database_from_dict

if TYPE_CHECKING:  # the engine imports this module's errors lazily
    from repro.core.objects import SpatialDatabase
    from repro.core.query import QueryResult, SpatialKeywordQuery
    from repro.service.api import YaskEngine

__all__ = [
    "FSYNC_POLICIES",
    "FollowerEngine",
    "FollowerLagError",
    "RecoveryReport",
    "WalCorruptionError",
    "WalError",
    "WalRecord",
    "WalWriteError",
    "WriteAheadLog",
    "load_snapshot",
    "read_records",
    "recover_engine",
    "replay_into",
]

#: Per-record frame header: payload byte length + CRC32 of the payload.
_HEADER = struct.Struct("<II")
#: Defensive ceiling on one record's payload — a corrupted length field
#: must not trigger a gigabyte allocation.
_MAX_RECORD_BYTES = 1 << 26
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"
_MANIFEST_NAME = "MANIFEST.json"
_MANIFEST_FORMAT = 1
_SNAPSHOT_FORMAT = 1

FSYNC_POLICIES = ("always", "never")

#: ``opener(path, mode) -> file object`` — injectable for fault testing
#: (the ``FlakyFile`` wrapper) and for exotic transports.
Opener = Callable[[str, str], Any]


class WalError(RuntimeError):
    """Base class for write-ahead-log failures."""


class WalCorruptionError(WalError):
    """The log or manifest is damaged beyond the tolerated torn tail.

    A torn *tail* (crash mid-append on the final segment) is normal and
    self-healing; a torn record anywhere else, a CRC mismatch behind
    intact records, a generation gap, or an unreadable manifest is not.
    """


class WalWriteError(WalError):
    """An append could not be made durable; the batch was NOT applied.

    The HTTP tier maps this to a structured 503: the write failed
    cleanly, the engine still serves its pre-batch state, and the
    client may retry.
    """


class FollowerLagError(WalError):
    """A follower read demanded a generation the replica has not reached.

    The HTTP tier maps this to a structured 503 (retry-after semantics):
    the replica is healthy, merely behind the client's consistency
    token.
    """


@dataclass(frozen=True, slots=True)
class WalRecord:
    """One logged batch: its generation and the wire-shaped mutations.

    ``token`` is the client-supplied idempotency token of the batch, if
    any — replay repopulates the engine's dedup map from it, so a
    client retrying a mutation across a primary restart still gets the
    original generation back instead of a double-apply.
    """

    generation: int
    mutations: tuple[Mapping[str, Any], ...]
    token: str | None = None


def _segment_name(start_generation: int) -> str:
    return f"{_SEGMENT_PREFIX}{start_generation:016d}{_SEGMENT_SUFFIX}"


def _segment_start(path: Path) -> int:
    stem = path.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        raise WalCorruptionError(
            f"segment file {path.name!r} is not named by a start generation"
        ) from None


def _list_segments(directory: Path) -> list[Path]:
    segments = [
        path
        for path in directory.iterdir()
        if path.name.startswith(_SEGMENT_PREFIX)
        and path.name.endswith(_SEGMENT_SUFFIX)
    ]
    return sorted(segments, key=_segment_start)


def _encode_record(
    generation: int,
    mutations: Sequence[Mapping[str, Any]],
    token: str | None = None,
) -> bytes:
    record: dict[str, Any] = {"g": generation, "m": list(mutations)}
    if token is not None:
        record["t"] = token
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _scan_records(
    raw: bytes,
) -> tuple[list[WalRecord], int, str | None]:
    """Parse one segment's bytes into records.

    Returns ``(records, clean_end_offset, torn_reason)``; ``torn_reason``
    is ``None`` on a clean end-of-file, otherwise a description of why
    parsing stopped (everything from ``clean_end_offset`` on is torn).
    """
    records: list[WalRecord] = []
    offset = 0
    total = len(raw)
    while True:
        if offset + _HEADER.size > total:
            reason = (
                None
                if offset == total
                else (
                    f"truncated record header at offset {offset} "
                    f"({total - offset} of {_HEADER.size} header bytes)"
                )
            )
            return records, offset, reason
        length, crc = _HEADER.unpack_from(raw, offset)
        if length > _MAX_RECORD_BYTES:
            return (
                records,
                offset,
                f"implausible record length {length} at offset {offset}",
            )
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            return (
                records,
                offset,
                f"truncated record payload at offset {offset} "
                f"({total - start} of {length} payload bytes)",
            )
        payload = raw[start:end]
        actual_crc = zlib.crc32(payload)
        if actual_crc != crc:
            return (
                records,
                offset,
                f"record checksum mismatch at offset {offset}: expected "
                f"CRC 0x{crc:08x}, got 0x{actual_crc:08x}",
            )
        try:
            decoded = json.loads(payload)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return (
                records,
                offset,
                f"record payload at offset {offset} is not JSON",
            )
        if (
            not isinstance(decoded, dict)
            or not isinstance(decoded.get("g"), int)
            or isinstance(decoded.get("g"), bool)
            or decoded["g"] < 1
            or not isinstance(decoded.get("m"), list)
            or not decoded["m"]
            or not all(isinstance(item, dict) for item in decoded["m"])
            or not (
                decoded.get("t") is None or isinstance(decoded.get("t"), str)
            )
        ):
            return (
                records,
                offset,
                f"malformed record payload at offset {offset}",
            )
        records.append(
            WalRecord(
                generation=decoded["g"],
                mutations=tuple(decoded["m"]),
                token=decoded.get("t"),
            )
        )
        offset = end


def _corruption_message(path: Path, torn_reason: str, is_tail: bool) -> str:
    """Name the failure class: recoverable torn tail vs mid-log damage.

    A torn *tail* (final segment, crash mid-append) is self-healing —
    reopening the writer truncates it — so its message says exactly
    that.  Damage behind intact records or in a non-final segment is
    unrecoverable corruption and the message must never suggest
    truncation would fix it.
    """
    if is_tail:
        return (
            f"recoverable torn tail in segment {path.name}: {torn_reason}; "
            "reopening the write-ahead log writer truncates it away"
        )
    return (
        f"mid-log corruption in segment {path.name}: {torn_reason}; "
        "the log cannot be replayed past this point — restore from a "
        "snapshot or a replica"
    )


def _read_bytes(path: Path, opener: Opener) -> bytes:
    try:
        with opener(str(path), "rb") as handle:
            return handle.read()
    except OSError as exc:
        raise WalError(f"cannot read {path.name}: {exc}") from None


def read_records(
    directory: str | Path,
    *,
    after: int = 0,
    opener: Opener = open,
    tolerate_torn_tail: bool = True,
) -> Iterator[WalRecord]:
    """Yield logged records with generation ``> after``, in log order.

    Segments whose entire generation range lies at or below ``after``
    are skipped without being read.  A torn tail on the *final* segment
    ends iteration (``tolerate_torn_tail=True``, the reader/follower
    stance — the primary may be mid-append right now); anywhere else a
    torn record raises :class:`WalCorruptionError`.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise WalError(f"no write-ahead log directory at {directory}")
    segments = _list_segments(directory)
    for index, path in enumerate(segments):
        if (
            index + 1 < len(segments)
            and _segment_start(segments[index + 1]) <= after + 1
        ):
            continue  # every record in this segment is <= after
        records, _, torn_reason = _scan_records(_read_bytes(path, opener))
        if torn_reason is not None and not (
            tolerate_torn_tail and index == len(segments) - 1
        ):
            raise WalCorruptionError(
                _corruption_message(path, torn_reason, index == len(segments) - 1)
            )
        for record in records:
            if record.generation > after:
                yield record
        if torn_reason is not None:
            return


def _load_manifest(directory: Path, opener: Opener) -> dict[str, Any]:
    path = directory / _MANIFEST_NAME
    if not path.exists():
        return {
            "format": _MANIFEST_FORMAT,
            "snapshot": None,
            "snapshot_generation": 0,
            "segments": [],
        }
    raw = _read_bytes(path, opener)
    try:
        manifest = json.loads(raw)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WalCorruptionError(f"{_MANIFEST_NAME} is not JSON: {exc}") from None
    if (
        not isinstance(manifest, dict)
        or manifest.get("format") != _MANIFEST_FORMAT
        or not isinstance(manifest.get("snapshot_generation"), int)
        or manifest["snapshot_generation"] < 0
    ):
        raise WalCorruptionError(f"{_MANIFEST_NAME} has an unsupported layout")
    return manifest


def load_snapshot(
    directory: str | Path, *, opener: Opener = open
) -> tuple[int, dict[str, Any]] | None:
    """``(generation, database payload)`` of the manifest's snapshot.

    ``None`` when the log has never been snapshotted.  Raises
    :class:`WalCorruptionError` when the manifest names a snapshot that
    is missing or malformed — a half-deleted log is not silently
    downgraded to "no snapshot", because replaying from generation 0
    against compacted segments would fabricate a gap.
    """
    directory = Path(directory)
    manifest = _load_manifest(directory, opener)
    name = manifest.get("snapshot")
    if name is None:
        return None
    path = directory / str(name)
    if not path.exists():
        raise WalCorruptionError(
            f"{_MANIFEST_NAME} names snapshot {name!r} but the file is missing"
        )
    try:
        payload = json.loads(_read_bytes(path, opener))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WalCorruptionError(f"snapshot {name!r} is not JSON: {exc}") from None
    if (
        not isinstance(payload, dict)
        or payload.get("format") != _SNAPSHOT_FORMAT
        or payload.get("generation") != manifest["snapshot_generation"]
        or not isinstance(payload.get("database"), dict)
    ):
        raise WalCorruptionError(
            f"snapshot {name!r} disagrees with the manifest"
        )
    return manifest["snapshot_generation"], payload["database"]


class WriteAheadLog:
    """A segmented, CRC-framed, append-only mutation log (the writer).

    One process owns a log directory for writing at a time; followers
    (:class:`FollowerEngine`) read the same directory concurrently.
    Opening the writer performs torn-tail recovery: the final segment is
    scanned and truncated back to its last intact record, so a crash
    mid-append never poisons the next run.

    Parameters
    ----------
    directory:
        The log directory (created if missing): segment files named
        ``wal-<start generation>.log``, ``MANIFEST.json`` and at most
        one ``snapshot-<generation>.json``.
    fsync:
        ``"always"`` — ``os.fsync`` after every append (survives machine
        crashes); ``"never"`` — flush to the OS only (survives process
        crashes; an ingest-benchmark and test-suite knob, and an honest
        choice when a follower provides redundancy).
    segment_bytes:
        Roll to a new segment once the active one reaches this size.
    opener:
        Injectable ``open``-alike for fault testing.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "always",
        segment_bytes: int = 4 << 20,
        opener: Opener = open,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_bytes < 1:
            raise ValueError("segment_bytes must be positive")
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._segment_bytes = segment_bytes
        # All file I/O flows through the fault-injection guard: inert
        # (raw handles, one None check per open) unless a chaos plan is
        # armed via repro.faults.armed().
        opener = faults.guarded_opener(opener, "wal")
        self._opener = opener
        # Re-entrant: write_snapshot compacts under the same lock.
        # fsync-sanctioned — flushing the log under it IS the write-
        # ahead guarantee.
        self._lock = concurrency.ordered_rlock(
            "wal.log", concurrency.LEVEL_WAL, fsync_safe=True
        )
        self._file: Any | None = None
        self._file_path: Path | None = None
        self._file_size = 0
        self._failed = False
        self._closed = False
        # Counters for the stats endpoint (guarded by self._lock).
        self.records_appended = 0
        self.bytes_appended = 0
        self.syncs = 0
        self.truncated_bytes = 0
        self.snapshots_written = 0
        self.segments_compacted = 0
        self._manifest = _load_manifest(self._directory, opener)
        self._last_generation = self._manifest["snapshot_generation"]
        self._open_tail()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def fsync_policy(self) -> str:
        return self._fsync

    @property
    def last_generation(self) -> int:
        """Generation of the newest durable record (or snapshot)."""
        with self._lock:
            return self._last_generation

    @property
    def snapshot_generation(self) -> int:
        """Generation the manifest's snapshot covers (0 = none)."""
        with self._lock:
            return self._manifest["snapshot_generation"]

    @property
    def failed(self) -> bool:
        """True once an append failure could not be rolled back."""
        with self._lock:
            return self._failed

    def to_dict(self) -> dict[str, Any]:
        """The ``durability`` section of ``GET /api/stats``."""
        with self._lock:
            segments = _list_segments(self._directory)
            return {
                "directory": str(self._directory),
                "fsync": self._fsync,
                "last_generation": self._last_generation,
                "snapshot_generation": self._manifest["snapshot_generation"],
                "segments": len(segments),
                "records_appended": self.records_appended,
                "bytes_appended": self.bytes_appended,
                "syncs": self.syncs,
                "truncated_bytes": self.truncated_bytes,
                "snapshots_written": self.snapshots_written,
                "segments_compacted": self.segments_compacted,
                "failed": self._failed,
            }

    # ------------------------------------------------------------------
    # Opening (torn-tail recovery)
    # ------------------------------------------------------------------
    def _open_tail(self) -> None:
        segments = _list_segments(self._directory)
        last_generation = self._last_generation
        for index, path in enumerate(segments):
            is_last = index == len(segments) - 1
            records, clean_end, torn_reason = _scan_records(
                _read_bytes(path, self._opener)
            )
            if torn_reason is not None:
                if not is_last:
                    raise WalCorruptionError(
                        _corruption_message(path, torn_reason, False)
                    )
                self._truncate_file(path, clean_end)
            if records:
                last_generation = max(last_generation, records[-1].generation)
            if is_last:
                self._file_path = path
                self._file_size = clean_end
        self._last_generation = last_generation

    def _truncate_file(self, path: Path, size: int) -> None:
        try:
            with self._opener(str(path), "r+b") as handle:
                handle.seek(0, os.SEEK_END)
                torn = handle.tell() - size
                handle.truncate(size)
        except OSError as exc:
            raise WalError(
                f"cannot truncate torn tail of {path.name}: {exc}"
            ) from None
        self.truncated_bytes += max(torn, 0)

    # ------------------------------------------------------------------
    # Appending (the write-ahead step)
    # ------------------------------------------------------------------
    def append(
        self,
        generation: int,
        mutations: Sequence[Mapping[str, Any]],
        *,
        token: str | None = None,
    ) -> None:
        """Durably log one batch as generation ``generation``.

        ``token`` is the client's idempotency token, persisted in the
        record so recovery and followers rebuild the dedup map.  Raises
        :class:`WalWriteError` when the frame could not be made
        durable; the log is rolled back to its pre-append state (or, if
        even that fails, marked failed so every later append refuses
        fast rather than risking a half-written tail).
        """
        if not mutations:
            raise WalError("refusing to log an empty mutation batch")
        with self._lock:
            if self._closed:
                raise WalWriteError("write-ahead log is closed")
            if self._failed:
                raise WalWriteError(
                    "write-ahead log previously failed mid-append and could "
                    "not roll back; reopen the log (torn-tail recovery) "
                    "before accepting writes"
                )
            if generation != self._last_generation + 1:
                raise WalError(
                    f"non-contiguous append: expected generation "
                    f"{self._last_generation + 1}, got {generation}"
                )
            frame = _encode_record(generation, mutations, token)
            handle = self._ensure_segment(generation)
            offset = self._file_size
            try:
                handle.write(frame)
                handle.flush()
                if self._fsync == "always":
                    self._sync(handle)
                    self.syncs += 1
            except (OSError, ValueError) as exc:
                self._rollback_append(offset, exc)
            self._file_size = offset + len(frame)
            self._last_generation = generation
            self.records_appended += 1
            self.bytes_appended += len(frame)

    def _ensure_segment(self, generation: int) -> Any:
        if self._file_path is not None and self._file_size >= self._segment_bytes:
            self._close_file()
            self._file_path = None
            self._file_size = 0
        if self._file is None:
            if self._file_path is None:
                self._file_path = self._directory / _segment_name(generation)
                self._file_size = 0
            try:
                self._file = self._opener(str(self._file_path), "ab")
            except OSError as exc:
                raise WalWriteError(
                    f"cannot open segment {self._file_path.name}: {exc}"
                ) from None
        return self._file

    @staticmethod
    def _sync(handle: Any) -> None:
        concurrency.note_fsync("wal")
        sync = getattr(handle, "sync", None)
        if sync is not None:
            sync()
        else:
            os.fsync(handle.fileno())

    def _rollback_append(self, offset: int, exc: Exception) -> None:
        try:
            self._file.truncate(offset)
            self._file.flush()
        except (OSError, ValueError):
            # The partial frame could not be removed: poison the writer.
            # The torn tail stays on disk, exactly the state a crash
            # would leave, and the next open truncates it away.
            self._failed = True
            self._close_file(quietly=True)
        raise WalWriteError(
            f"write-ahead log append failed: {exc}; the batch was NOT applied"
        ) from exc

    def _close_file(self, *, quietly: bool = False) -> None:
        if self._file is None:
            return
        try:
            self._file.close()
        except OSError:
            if not quietly:
                raise
        finally:
            self._file = None

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def records(self, *, after: int = 0) -> list[WalRecord]:
        """All durable records with generation ``> after`` (recovery path)."""
        with self._lock:
            self._flush()
            return list(
                read_records(
                    self._directory,
                    after=after,
                    opener=self._opener,
                    tolerate_torn_tail=False,
                )
            )

    def _flush(self) -> None:
        if self._file is not None:
            try:
                self._file.flush()
            except (OSError, ValueError):
                # Best-effort pre-read flush: a failing handle surfaces
                # as a structured WalWriteError on the next append, not
                # mid-read.
                pass

    # ------------------------------------------------------------------
    # Snapshots + compaction
    # ------------------------------------------------------------------
    def write_snapshot(
        self, generation: int, database_payload: dict[str, Any]
    ) -> dict[str, Any]:
        """Persist a snapshot covering ``generation``; compact the log.

        The snapshot file and the manifest are both written atomically
        (temp file + ``os.replace``), in that order, so every crash
        point leaves either the old manifest (pointing at the old,
        intact snapshot) or the new one (pointing at the new, intact
        snapshot).  Segments whose entire range the snapshot covers are
        then deleted — except the active segment, which the next append
        continues.
        """
        with self._lock:
            if self._closed:
                raise WalWriteError("write-ahead log is closed")
            if generation < self._manifest["snapshot_generation"]:
                raise WalError(
                    f"snapshot generation {generation} would regress the "
                    f"manifest's {self._manifest['snapshot_generation']}"
                )
            if generation > self._last_generation:
                raise WalError(
                    f"snapshot generation {generation} is ahead of the log "
                    f"({self._last_generation})"
                )
            name = f"snapshot-{generation:016d}.json"
            payload = {
                "format": _SNAPSHOT_FORMAT,
                "generation": generation,
                "database": database_payload,
            }
            previous = self._manifest.get("snapshot")
            self._write_atomically(name, json.dumps(payload))
            self._manifest = {
                "format": _MANIFEST_FORMAT,
                "snapshot": name,
                "snapshot_generation": generation,
                "segments": [
                    path.name for path in _list_segments(self._directory)
                ],
            }
            self._write_atomically(
                _MANIFEST_NAME, json.dumps(self._manifest)
            )
            # Compact only once the new manifest is durable: a crash
            # before this line leaves extra segments (recovery skips
            # them via the generation filter), never missing ones.  The
            # manifest's segment list is informational — readers always
            # discover segments by listing the directory.
            compacted = self._compact(generation)
            if previous is not None and previous != name:
                (self._directory / previous).unlink(missing_ok=True)
            self.snapshots_written += 1
            self.segments_compacted += compacted
            return {
                "snapshot": name,
                "generation": generation,
                "segments_compacted": compacted,
            }

    def _write_atomically(self, name: str, text: str) -> None:
        path = self._directory / name
        tmp = self._directory / (name + ".tmp")
        try:
            with self._opener(str(tmp), "wb") as handle:
                handle.write(text.encode("utf-8"))
                handle.flush()
                if self._fsync == "always":
                    self._sync(handle)
            os.replace(tmp, path)
        except (OSError, ValueError) as exc:
            tmp.unlink(missing_ok=True)
            raise WalWriteError(f"cannot write {name}: {exc}") from exc

    def _compact(self, covered_generation: int) -> int:
        """Delete segments whose records all lie at or below the snapshot."""
        segments = _list_segments(self._directory)
        compacted = 0
        for index, path in enumerate(segments):
            is_last = index == len(segments) - 1
            if is_last:
                break  # never delete the active segment
            if _segment_start(segments[index + 1]) <= covered_generation + 1:
                path.unlink(missing_ok=True)
                compacted += 1
        return compacted

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush and close the active segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._flush()
            self._close_file(quietly=True)
            self._closed = True


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class RecoveryReport:
    """What :func:`recover_engine` reconstructed."""

    generation: int
    snapshot_generation: int
    records_replayed: int
    mutations_replayed: int
    objects: int

    def to_dict(self) -> dict[str, int]:
        return {
            "generation": self.generation,
            "snapshot_generation": self.snapshot_generation,
            "records_replayed": self.records_replayed,
            "mutations_replayed": self.mutations_replayed,
            "objects": self.objects,
        }


def _replay(
    records: Iterator[WalRecord] | Sequence[WalRecord],
    generation_of: Callable[[], int],
    apply: Callable[[Sequence[Any], str | None], Any],
) -> tuple[int, int]:
    """The shared replay loop: decode, gap-check, apply, verify.

    ``generation_of``/``apply`` abstract over the target — a live
    :class:`~repro.service.api.YaskEngine` (follower polling) or a bare
    :class:`~repro.core.mutations.MutableDatabase` (bulk recovery).
    Both targets run the identical sequential-semantics normalisation,
    so a record that replays to any generation other than its own is a
    corrupt log, not a mode difference.
    """
    from repro.service.protocol import ProtocolError, mutation_from_dict

    records_applied = 0
    mutations_applied = 0
    for record in records:
        generation = generation_of()
        if record.generation <= generation:
            continue
        if record.generation != generation + 1:
            raise WalCorruptionError(
                f"generation gap: log jumps to {record.generation} but the "
                f"engine is at {generation}"
            )
        try:
            mutations = [
                mutation_from_dict(item) for item in record.mutations
            ]
        except ProtocolError as exc:
            raise WalCorruptionError(
                f"record {record.generation} holds a malformed mutation: {exc}"
            ) from None
        report = apply(mutations, record.token)
        if report.generation != record.generation:
            raise WalCorruptionError(
                f"record {record.generation} replayed as generation "
                f"{report.generation}; the log disagrees with sequential "
                "semantics"
            )
        records_applied += 1
        mutations_applied += len(mutations)
    return records_applied, mutations_applied


def replay_into(
    engine: "YaskEngine", records: Iterator[WalRecord] | Sequence[WalRecord]
) -> tuple[int, int]:
    """Replay logged records through the engine's normal mutation path.

    Returns ``(records_applied, mutations_applied)``.  Records at or
    below the engine's current generation are skipped — the
    double-replay guard: recovery, follower polling and an operator
    accidentally replaying the same log twice are all idempotent.  A
    generation *gap* raises :class:`WalCorruptionError` (records lost,
    or a follower outrun by compaction).
    """
    return _replay(
        records,
        lambda: engine.generation,
        lambda mutations, token: engine.apply_mutations(
            mutations, batch_token=token
        ),
    )


def _recovered_database(
    directory: Path,
    database: "SpatialDatabase | None",
    opener: Opener,
    *,
    tolerate_torn_tail: bool,
) -> tuple["SpatialDatabase", int, int, int, int]:
    """Reconstruct the durable database state by bulk replay.

    Loads the manifest's snapshot (or adopts ``database``, the seed
    state, when the log predates any snapshot) and replays every record
    past it at the *database* layer — full sequential-semantics
    normalisation and generation checking, but none of the engine's
    incremental index maintenance, which recovery would only throw away
    rebuilding the engine anyway.  Returns ``(database,
    base_generation, final_generation, records, mutations, tokens)``;
    the caller builds the engine (indexes, kernel, shards) once, over
    the final state, seeding it with the replayed idempotency tokens so
    client retries dedup across the restart.
    """
    from repro.core.mutations import MutableDatabase

    snapshot = load_snapshot(directory, opener=opener)
    if snapshot is not None:
        base_generation, payload = snapshot
        try:
            database = database_from_dict(payload)
        except IndexPersistenceError as exc:
            raise WalCorruptionError(f"snapshot is malformed: {exc}") from None
    elif database is None:
        raise WalError(
            f"log at {directory} has no snapshot; pass the seed database "
            "the log was started over to replay from generation 0"
        )
    else:
        base_generation = 0
    coordinator = MutableDatabase(database, start_generation=base_generation)
    records_applied, mutations_applied = _replay(
        read_records(
            directory,
            after=base_generation,
            opener=opener,
            tolerate_torn_tail=tolerate_torn_tail,
        ),
        lambda: coordinator.generation,
        lambda mutations, token: coordinator.apply(mutations, token=token),
    )
    return (
        database,
        base_generation,
        coordinator.generation,
        records_applied,
        mutations_applied,
        coordinator.known_tokens(),
    )


def recover_engine(
    directory: str | Path,
    *,
    database: "SpatialDatabase | None" = None,
    attach: bool = True,
    fsync: str = "always",
    segment_bytes: int = 4 << 20,
    opener: Opener = open,
    **engine_kwargs: Any,
) -> tuple["YaskEngine", RecoveryReport]:
    """Reconstruct the exact pre-crash engine from a log directory.

    Opens the log as the writer (torn-tail truncation), loads the
    manifest's snapshot — or ``database``, the seed state, when the log
    predates any snapshot — and bulk-replays every record past it at
    the database layer before building the engine's indexes exactly
    once over the final state (far cheaper than paying incremental
    index maintenance per replayed batch, and bit-for-bit identical:
    the live-mutation property suite pins incremental maintenance to
    the rebuilt result).  ``attach=True`` (default) leaves the log
    attached to the engine so new batches keep appending;
    ``engine_kwargs`` (``shards=…``, ``max_entries=…``, …) configure
    the rebuilt engine.
    """
    from repro.service.api import YaskEngine

    log = WriteAheadLog(
        directory, fsync=fsync, segment_bytes=segment_bytes, opener=opener
    )
    try:
        final_db, base_generation, generation, records, mutations, tokens = (
            _recovered_database(
                log.directory, database, opener, tolerate_torn_tail=False
            )
        )
        engine = YaskEngine(
            final_db,
            base_generation=generation,
            batch_tokens=tokens,
            **engine_kwargs,
        )
    except BaseException:
        log.close()
        raise
    if attach:
        engine.attach_wal(log)
    else:
        log.close()
    return engine, RecoveryReport(
        generation=engine.generation,
        snapshot_generation=base_generation,
        records_replayed=records,
        mutations_replayed=mutations,
        objects=len(engine.database),
    )


# ----------------------------------------------------------------------
# Followers (read replicas tailing the log)
# ----------------------------------------------------------------------
class FollowerEngine:
    """A read-only replica built by tailing a primary's log directory.

    The follower bootstraps exactly like recovery — snapshot (or seed
    database) plus replay — but *never writes*: it does not truncate
    torn tails (the primary may be mid-append; the torn record simply
    becomes visible on a later poll) and its engine has no log attached,
    so a stray mutation against it fails loudly.

    :meth:`poll` is cheap when nothing changed (one directory listing
    and one ``stat``), so the serving tier polls before every read.
    :meth:`read` honours the ``min_generation`` consistency token: a
    client that observed the primary acknowledge generation ``g`` can
    demand reads reflect at least ``g``, and gets a structured
    :class:`FollowerLagError` (HTTP 503) instead of stale data when the
    replica has not caught up.

    If the primary compacts away segments the follower has not read
    yet (its lag exceeded the snapshot cadence), polling detects the
    generation gap, confirms the manifest's snapshot has moved past the
    replica, and *re-bootstraps in place* from that newer snapshot —
    the engine object is swapped under the follower lock, no restart
    required.  :attr:`rebootstraps` counts these events; serving tiers
    holding a reference to :attr:`engine` must re-read the property
    after each poll (the HTTP server does).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        database: "SpatialDatabase | None" = None,
        opener: Opener = open,
        **engine_kwargs: Any,
    ) -> None:
        self._directory = Path(directory)
        if not self._directory.is_dir():
            raise WalError(
                f"no write-ahead log directory at {self._directory}"
            )
        # Follower file I/O gets its own injection prefix so chaos
        # plans can fail replica tailing without touching the primary.
        opener = faults.guarded_opener(opener, "follower.wal")
        self._opener = opener
        self._engine_kwargs = engine_kwargs
        # Below the engine lock: poll() holds it while replaying into
        # engine.apply_mutations (engine write lock, level 20).
        self._lock = concurrency.ordered_lock(
            "wal.follower", concurrency.LEVEL_FOLLOWER
        )
        from repro.service.api import YaskEngine

        final_db, self._base_generation, generation, applied, _, tokens = (
            _recovered_database(
                self._directory, database, opener, tolerate_torn_tail=True
            )
        )
        self._engine = YaskEngine(
            final_db,
            base_generation=generation,
            batch_tokens=tokens,
            **engine_kwargs,
        )
        self._records_applied = applied
        self._cursor: tuple[str, int] | None = None
        self.polls = 0
        self.poll_skips = 0
        self.rebootstraps = 0
        self.poll()

    @property
    def engine(self) -> "YaskEngine":
        """The replica engine — serve reads from it, never writes."""
        return self._engine

    @property
    def generation(self) -> int:
        return self._engine.generation

    @property
    def directory(self) -> Path:
        return self._directory

    def _tail_unchanged(self) -> bool:
        try:
            segments = _list_segments(self._directory)
        except OSError:
            return False
        if not segments:
            return self._cursor is None
        last = segments[-1]
        try:
            cursor = (last.name, last.stat().st_size)
        except OSError:
            return False
        if cursor == self._cursor:
            return True
        self._cursor = cursor
        return False

    def poll(self) -> int:
        """Apply any newly durable records; returns how many were applied.

        When the tail has a generation gap because the primary's
        compaction outran this replica, the follower re-bootstraps from
        the newer snapshot instead of dying: the return value then
        counts the generations the engine advanced, so callers that
        invalidate caches on ``applied > 0`` stay correct.
        """
        faults.trip("follower.poll")
        with self._lock:
            self.polls += 1
            if self._tail_unchanged():
                self.poll_skips += 1
                return 0
            try:
                applied, _ = replay_into(
                    self._engine,
                    read_records(
                        self._directory,
                        after=self._engine.generation,
                        opener=self._opener,
                        tolerate_torn_tail=True,
                    ),
                )
            except WalCorruptionError:
                snapshot_generation = _load_manifest(
                    self._directory, self._opener
                )["snapshot_generation"]
                if snapshot_generation <= self._engine.generation:
                    # Not compaction outrunning us — genuine damage.
                    raise
                applied = self._rebootstrap()
            self._records_applied += applied
            return applied

    def _rebootstrap(self) -> int:
        """Rebuild the replica engine from the newest snapshot, in place.

        Called under the follower lock when compaction removed the
        segments between the replica's generation and the primary's.
        Returns the number of generations advanced (always >= 1).
        """
        from repro.service.api import YaskEngine

        final_db, base_generation, generation, _, _, tokens = (
            _recovered_database(
                self._directory, None, self._opener, tolerate_torn_tail=True
            )
        )
        previous = self._engine
        before = previous.generation
        self._engine = YaskEngine(
            final_db,
            base_generation=generation,
            batch_tokens=tokens,
            **self._engine_kwargs,
        )
        self._base_generation = base_generation
        self.rebootstraps += 1
        previous.close()
        return max(1, generation - before)

    def read(
        self,
        query: "SpatialKeywordQuery",
        *,
        min_generation: int | None = None,
    ) -> tuple["QueryResult", int]:
        """Serve one top-k read, returning ``(result, generation)``.

        Polls first, then enforces the consistency token: the returned
        generation is taken under the same read lock as the query, so
        the pair is never torn — the result *is* that generation's
        answer.
        """
        self.poll()
        if (
            min_generation is not None
            and self._engine.generation < min_generation
        ):
            raise FollowerLagError(
                f"follower is at generation {self._engine.generation}; the "
                f"read requires at least {min_generation} — retry shortly"
            )
        # Nested read acquisition is safe by the ReadWriteLock's
        # readers-preference design; pairing generation and result under
        # one read view is what makes the token end-to-end sound.
        with self._engine.read_view():
            generation = self._engine.generation
            result = self._engine.query(query)
        return result, generation

    def to_dict(self) -> dict[str, Any]:
        """The ``durability`` section a follower server reports."""
        with self._lock:
            return {
                "enabled": True,
                "role": "follower",
                "directory": str(self._directory),
                "generation": self._engine.generation,
                "snapshot_generation": self._base_generation,
                "records_applied": self._records_applied,
                "polls": self.polls,
                "poll_skips": self.poll_skips,
                "rebootstraps": self.rebootstraps,
            }

    def close(self) -> None:
        self._engine.close()
