"""Process-parallel shard workers over shared-memory kernel columns.

The scatter-gather tier (PR 4) fans shard scans over a *thread* pool,
so the pure-Python kernel loops still serialize on the GIL and the
multicore speedup is capped far below the shard count.  This module
moves the scans into long-lived worker **processes**:

* Each shard's :class:`~repro.core.kernel.ScoringKernel` columns are
  exported once into a ``multiprocessing.shared_memory`` segment
  (:meth:`ScoringKernel.export_columns`), and the worker attaches
  zero-copy ``memoryview`` casts over the segment
  (:meth:`ScoringKernel.from_columns`) — startup cost is independent of
  shard size beyond the one ``memcpy`` into the segment.
* The parent talks to each worker over a :class:`multiprocessing.Pipe`
  with a framed, pickled request/response protocol.  Scan requests ship
  the *prepared* query scalars (``qx, qy, qmask, qlen, ws, wt`` — the
  output of the kernel's query preparation), so the worker runs exactly
  the same ``scan_top_k`` the threaded path runs and returns the same
  ``(−score, oid)`` pairs, bit for bit.
* Mutations and the WAL stay on the primary.  After a batch commits,
  the pool broadcasts each shard's slice as a **generation-stamped
  column delta** (removed oids + pre-encoded appended rows) while the
  engine's writer lock is held, so a worker is never asked to serve a
  generation it has not fully applied — every scan request carries the
  generation the parent expects and a mismatch is treated as a crash.
* A crashed worker (kill -9, OOM, bug) is detected on the next pipe
  interaction, restarted in place from the shard's *current* kernel
  columns, and surfaced as :class:`WorkerCrashedError` — the serving
  tier maps it onto the PR-8 structured-503 resilience envelope, and
  the very next query is answered exactly by the fresh worker.

Deadline and fault-injection sites (``shard.scan.<i>``) are tripped in
the *parent* before each dispatch, so seeded
:class:`~repro.faults.FaultPlan` replays and the virtual clock behave
identically whether shards are threads or processes.

The pool is deliberately conservative about locking: one pool-wide
scatter lock serializes every pipe interaction (scans, deltas,
restarts), keeping the per-worker protocol strictly request/response.
Cross-process parallelism comes from *fanning sends before receives*
inside a single locked scatter, not from concurrent scatters — the
engine's read/write lock already serializes scans against mutations.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import time
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING, Sequence

from repro import concurrency
from repro.core.kernel import ScoringKernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sharding import Shard, ShardRouter

__all__ = ["ShardWorkerPool", "WorkerCrashedError"]

# Pipe-level failures that mean "the worker is gone", as one tuple so
# the parent's send/recv sites stay in lockstep.
_PIPE_ERRORS = (BrokenPipeError, ConnectionResetError, EOFError, OSError)

# Segment names carry a process-global sequence number so several pools
# in one parent (benchmarks, follower swaps) never collide.
_SEGMENT_SEQ = itertools.count(1)


class WorkerCrashedError(RuntimeError):
    """A shard worker process died (or desynced) mid-request.

    Raised *after* the pool has already restarted the worker in place,
    so the failure is transient by construction: the serving tier maps
    it to a structured 503 with ``Retry-After`` and the retried query
    is answered exactly.
    """

    def __init__(self, shard_id: int, detail: str) -> None:
        super().__init__(
            f"shard worker {shard_id} crashed and was restarted ({detail})"
        )
        self.shard_id = shard_id
        self.detail = detail


def _attach_segment(name: str, own_tracker: bool) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker adoption.

    Before 3.13 an attaching process registers the segment with its
    resource tracker, which then unlinks it when the *attacher* exits —
    yanking the memory out from under the parent and every sibling.
    3.13 added ``track=False``; earlier interpreters need the documented
    unregister workaround — but only when this process runs its **own**
    tracker (spawn/forkserver).  A forked child shares the parent's
    tracker, where the attach-time register is an idempotent no-op and
    an unregister here would erase the *parent's* registration.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        segment = shared_memory.SharedMemory(name=name)
        if own_tracker:
            resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
        return segment


def _worker_main(
    conn, shm_name: str, meta: dict, generation: int, own_tracker: bool
) -> None:
    """Worker process body: attach the columns, serve the pipe until EOF.

    Messages are pickled tuples over ``Connection.send_bytes`` /
    ``recv_bytes`` (the connection provides framing):

    * ``("scan", gen, k, qx, qy, qmask, qlen, ws, wt)`` →
      ``("ok", gen, pairs)`` — the shard's ``(−score, oid)`` top-k.
    * ``("delta", gen, removed_oids, rows)`` → ``("ok", gen, None)`` —
      a generation-stamped column delta; the kernel thaws its
      shared-segment columns into local arrays on the first one.
    * ``("ping",)`` → ``("ok", gen, pid)`` — liveness probe.
    * ``("sleep", seconds)`` → *no response* — test hook: stall inside
      request processing so chaos tests can kill the worker mid-request.
    * ``("exit",)`` — clean shutdown.

    A scan whose generation differs from the worker's own answers
    ``("err", ...)`` — the parent treats that as a crash and restarts
    the worker, so a torn generation is never served.
    """
    segment = _attach_segment(shm_name, own_tracker)
    kernel = ScoringKernel.from_columns(meta, segment.buf)
    attached = True
    parent_pid = os.getppid()
    try:
        while True:
            try:
                # Poll with a timeout instead of blocking forever: if
                # the primary is SIGKILLed, forked siblings still hold
                # this pipe's parent end (fd inheritance), so EOF never
                # arrives — re-parenting is the reliable death signal.
                if not conn.poll(1.0):
                    if os.getppid() != parent_pid:
                        break
                    continue
                message = pickle.loads(conn.recv_bytes())
            except _PIPE_ERRORS:
                break
            op = message[0]
            if op == "scan":
                expect, k, qx, qy, qmask, qlen, ws, wt = message[1:]
                if expect != generation:
                    conn.send_bytes(
                        pickle.dumps(
                            (
                                "err",
                                generation,
                                f"generation skew: worker at {generation}, "
                                f"parent expects {expect}",
                            )
                        )
                    )
                    continue
                pairs = kernel.scan_top_k(k, qx, qy, qmask, qlen, ws, wt)
                conn.send_bytes(pickle.dumps(("ok", generation, pairs)))
            elif op == "delta":
                new_generation, removed_oids, rows = message[1:]
                if kernel.thaw_columns() and attached:
                    # Columns are local copies now; release the segment
                    # (the parent owns create/unlink).
                    segment.close()
                    attached = False
                kernel.apply_raw(removed_oids, rows, force_compact=True)
                generation = new_generation
                conn.send_bytes(pickle.dumps(("ok", generation, None)))
            elif op == "ping":
                conn.send_bytes(pickle.dumps(("ok", generation, os.getpid())))
            elif op == "sleep":
                time.sleep(message[1])
            elif op == "exit":
                break
            else:
                conn.send_bytes(
                    pickle.dumps(("err", generation, f"unknown op {op!r}"))
                )
    finally:
        if attached:
            # Drop the kernel's memoryviews before closing the mapping,
            # or ``close`` raises ``BufferError: exported pointers``.
            del kernel
            segment.close()
        conn.close()


class _WorkerHandle:
    """Parent-side state for one shard worker."""

    __slots__ = ("shard_id", "process", "conn", "segment", "generation", "restarts")

    def __init__(self, shard_id, process, conn, segment) -> None:
        self.shard_id = shard_id
        self.process = process
        self.conn = conn
        self.segment = segment
        self.generation = 0
        self.restarts = 0


class ShardWorkerPool:
    """Long-lived shard worker processes behind one scatter lock.

    Parameters
    ----------
    router:
        The engine's :class:`~repro.core.sharding.ShardRouter`.  One
        worker is spawned per shard, keyed by the stable
        ``Shard.shard_id`` (survives shard drops).
    start_method:
        ``multiprocessing`` start method.  Defaults to ``"fork"`` where
        available (milliseconds to spawn; the child re-attaches the
        shared segment by name either way) and ``"spawn"`` elsewhere.
    """

    def __init__(
        self, router: "ShardRouter", *, start_method: str | None = None
    ) -> None:
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.start_method = start_method
        self._context = multiprocessing.get_context(start_method)
        self._router = router
        self._lock = concurrency.ordered_lock(
            "procpool.scatter", concurrency.LEVEL_LEAF
        )
        self._handles: dict[int, _WorkerHandle] = {}
        self._closed = False
        self.restarts = 0
        self.scans = 0
        self.deltas = 0
        try:
            for shard in router.shards:
                self._handles[shard.shard_id] = self._spawn(shard)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, shard: "Shard") -> _WorkerHandle:
        """Export the shard's kernel columns and start its worker."""
        meta, blob = shard.kernel.export_columns()
        # Process-global sequence: several pools can coexist in one
        # parent (benchmarks, follower swaps) without name collisions.
        name = f"yask-{os.getpid()}-{shard.shard_id}-{next(_SEGMENT_SEQ)}"
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, len(blob))
        )
        segment.buf[: len(blob)] = blob
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, name, meta, 0, self.start_method != "fork"),
            name=f"yask-shard-{shard.shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(shard.shard_id, process, parent_conn, segment)

    def _retire(self, handle: _WorkerHandle) -> None:
        """Stop a worker and free its segment (best-effort, idempotent)."""
        try:
            handle.conn.send_bytes(pickle.dumps(("exit",)))
        except _PIPE_ERRORS:
            pass  # already gone; reap below
        handle.conn.close()
        handle.process.join(timeout=2.0)
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=2.0)
        handle.segment.close()
        try:
            handle.segment.unlink()
        except FileNotFoundError:
            pass  # unlinked already (double retire)

    def _restart(self, handle: _WorkerHandle, detail: str) -> None:
        """Replace a dead worker in place from the shard's current columns.

        Called with the scatter lock held.  The shard's kernel is the
        post-batch source of truth (mutations run on the primary), so a
        worker respawned from it is at the latest generation by
        construction — ``generation`` restarts at zero along with it.
        """
        self._retire(handle)
        shard = None
        for candidate in self._router.shards:
            if candidate.shard_id == handle.shard_id:
                shard = candidate
                break
        if shard is None:
            # The shard was dropped while its worker was dead; nothing
            # to resurrect.
            self._handles.pop(handle.shard_id, None)
            return
        fresh = self._spawn(shard)
        fresh.restarts = handle.restarts + 1
        self._handles[handle.shard_id] = fresh
        self.restarts += 1

    def close(self) -> None:
        """Stop every worker and unlink every segment (idempotent)."""
        with self._lock:
            self._closed = True
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            self._retire(handle)

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def _scan_payload(self, handle: _WorkerHandle, k: int, scalars) -> bytes:
        return pickle.dumps(("scan", handle.generation, k, *scalars))

    def _require(self, shard_id: int) -> _WorkerHandle:
        if self._closed:
            raise RuntimeError("worker pool is closed")
        return self._handles[shard_id]

    def scan_one(
        self, shard: "Shard", k: int, scalars: Sequence
    ) -> list[tuple[float, int]]:
        """One shard's ``(−score, oid)`` top-k from its worker process."""
        with self._lock:
            handle = self._require(shard.shard_id)
            try:
                handle.conn.send_bytes(self._scan_payload(handle, k, scalars))
                status, _gen, result = pickle.loads(handle.conn.recv_bytes())
            except _PIPE_ERRORS as exc:
                detail = repr(exc)
                self._restart(handle, detail)
                raise WorkerCrashedError(handle.shard_id, detail) from exc
            if status != "ok":
                self._restart(handle, str(result))
                raise WorkerCrashedError(handle.shard_id, str(result))
            self.scans += 1
            return result

    def scan_many(
        self, requests: Sequence[tuple["Shard", int, Sequence]]
    ) -> dict[int, list[tuple[float, int]]]:
        """Fan a scan across many workers: all sends, then all receives.

        The workers compute concurrently between the send sweep and the
        receive sweep — this is where the multicore win lives.  Every
        pipe that received a request is drained even when another
        worker fails, so the request/response streams never desync; the
        first failure is raised as :class:`WorkerCrashedError` after
        all crashed workers have been restarted.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            crashed: list[tuple[_WorkerHandle, str]] = []
            pending: list[_WorkerHandle] = []
            results: dict[int, list[tuple[float, int]]] = {}
            for shard, k, scalars in requests:
                handle = self._handles[shard.shard_id]
                try:
                    handle.conn.send_bytes(
                        self._scan_payload(handle, k, scalars)
                    )
                except _PIPE_ERRORS as exc:
                    crashed.append((handle, repr(exc)))
                else:
                    pending.append(handle)
            for handle in pending:
                try:
                    status, _gen, result = pickle.loads(
                        handle.conn.recv_bytes()
                    )
                except _PIPE_ERRORS as exc:
                    crashed.append((handle, repr(exc)))
                    continue
                if status != "ok":
                    crashed.append((handle, str(result)))
                    continue
                results[handle.shard_id] = result
            for handle, detail in crashed:
                self._restart(handle, detail)
            if crashed:
                handle, detail = crashed[0]
                raise WorkerCrashedError(handle.shard_id, detail)
            self.scans += len(requests)
            return results

    # ------------------------------------------------------------------
    # Mutation listener (registered after the shard router)
    # ------------------------------------------------------------------
    def apply_mutations(self, change) -> None:
        """Broadcast the router's per-shard deltas, generation-stamped.

        Runs under the engine's exclusive writer lock as the listener
        registered *after* the shard router, so ``router.last_shard_deltas``
        describes exactly this batch and no scan can interleave: workers
        either serve the pre-batch generation (before this ran) or the
        post-batch one (after), never a torn middle.  Appended rows are
        pre-encoded against each shard kernel's (already extended)
        vocabulary — workers hold no vocabulary of their own.

        Every surviving shard gets a delta — an empty one when the batch
        did not touch it — so each batch doubles as a liveness sweep: a
        worker that fails its delta (or died since the last batch) is
        restarted from the shard's post-batch columns instead.  Same end
        state, one fresh process, and never a stale handle left to
        surprise the next scan.
        """
        if self._closed:
            return
        router = self._router
        with self._lock:
            for shard_id in router.last_dropped:
                handle = self._handles.pop(shard_id, None)
                if handle is not None:
                    self._retire(handle)
            for shard in router.shards:
                handle = self._handles.get(shard.shard_id)
                if handle is None:
                    # A shard born in this batch (split) has no worker yet.
                    self._handles[shard.shard_id] = self._spawn(shard)
                    continue
                removed_oids, appended = router.last_shard_deltas.get(
                    shard.shard_id, ((), ())
                )
                # The one definition of the column-delta wire format —
                # shared with the mutation summariser, so the rows a
                # proc worker applies are byte-identical to the rows
                # executor maintenance scores.
                rows = ScoringKernel.encode_rows(
                    appended, shard.kernel.vocabulary
                )
                new_generation = handle.generation + 1
                message = ("delta", new_generation, removed_oids, rows)
                try:
                    handle.conn.send_bytes(pickle.dumps(message))
                    status, generation, _ = pickle.loads(
                        handle.conn.recv_bytes()
                    )
                    applied = status == "ok" and generation == new_generation
                except _PIPE_ERRORS:
                    applied = False
                if applied:
                    handle.generation = new_generation
                    self.deltas += 1
                else:
                    self._restart(handle, "delta broadcast failed")

    # ------------------------------------------------------------------
    # Introspection and test hooks
    # ------------------------------------------------------------------
    def worker_pid(self, shard_id: int) -> int | None:
        """The worker's OS pid (chaos tests aim ``kill -9`` with this)."""
        with self._lock:
            handle = self._handles.get(shard_id)
            return None if handle is None else handle.process.pid

    def ping(self, shard_id: int) -> int:
        """Round-trip liveness probe; returns the worker's pid."""
        with self._lock:
            handle = self._require(shard_id)
            try:
                handle.conn.send_bytes(pickle.dumps(("ping",)))
                status, _gen, pid = pickle.loads(handle.conn.recv_bytes())
            except _PIPE_ERRORS as exc:
                detail = repr(exc)
                self._restart(handle, detail)
                raise WorkerCrashedError(handle.shard_id, detail) from exc
            if status != "ok":
                self._restart(handle, str(pid))
                raise WorkerCrashedError(handle.shard_id, str(pid))
            return pid

    def inject_stall(self, shard_id: int, seconds: float) -> None:
        """Test hook: stall the worker inside request processing.

        Sends a ``sleep`` op (which produces no response) and returns
        immediately — chaos tests follow up with ``kill -9`` to die
        mid-request, or let the stall elapse to simulate a slow worker.
        """
        with self._lock:
            handle = self._require(shard_id)
            handle.conn.send_bytes(pickle.dumps(("sleep", float(seconds))))

    def segment_names(self) -> list[str]:
        """The live shared-memory segment names (leak assertions)."""
        with self._lock:
            return [handle.segment.name for handle in self._handles.values()]

    def to_dict(self) -> dict[str, object]:
        """The ``GET /api/stats`` ``procpool`` payload."""
        with self._lock:
            return {
                "workers": len(self._handles),
                "start_method": self.start_method,
                "scans": self.scans,
                "deltas": self.deltas,
                "restarts": self.restarts,
                "generations": {
                    str(shard_id): handle.generation
                    for shard_id, handle in sorted(self._handles.items())
                },
            }
