"""Shared query execution: request dedup, result caching and batching.

The paper's server caches only the per-session *initial* query
(Section 3.3): two users asking the same top-k question — or one user
asking it twice — pay the full index traversal every time, and the HTTP
layer moves exactly one query per request.  This module adds the serving
tier the ROADMAP's "heavy traffic from millions of users" north star
needs on top of the unchanged :class:`repro.service.api.YaskEngine`:

* :func:`query_fingerprint` — a canonical, order-insensitive key for a
  :class:`~repro.core.query.SpatialKeywordQuery`; two queries with the
  same location, keyword set, ``k`` and weights share one fingerprint.
* :class:`QueryExecutor` — a thread-safe front of the engine that
  (1) serves repeated queries from a bounded LRU result cache,
  (2) collapses identical *in-flight* queries so concurrent duplicates
  execute the index traversal once, and (3) fans query batches across a
  worker pool.  Hit/miss/eviction counters are exposed as
  :class:`CacheStats` and the cache can be invalidated explicitly when
  the dataset changes.
* :func:`whynot_fingerprint` / :class:`WhyNotQuestion` /
  :class:`WhyNotExecutor` — the same serving tier for the engine the
  paper is actually about.  A why-not question (explanation +
  refinement, Sections 3.2-3.3) costs far more than the top-k query it
  explains, so repeated and concurrent questions benefit even more from
  caching and dedup.  The why-not executor additionally *reuses* the
  top-k executor's cached result for the question's underlying query as
  the refinement pipeline's starting point instead of re-running the
  search, and shares one invalidation domain with it: invalidating
  either cache drops both (a dataset change staleness both).

Cacheability rests on the same immutability the session cache already
relies on: the database, the indexes, :class:`QueryResult` and every
why-not answer object are all frozen after construction, so a cached
result is exactly the result a fresh computation would produce until
:meth:`invalidate` declares otherwise.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import insort
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace as dc_replace
from typing import Any, Callable, Protocol, Sequence

from repro import concurrency, faults
from repro.core.kernel import score_delta_rows
from repro.core.query import QueryResult, RankedObject, SpatialKeywordQuery
from repro.whynot.errors import WhyNotError

__all__ = [
    "BatchExecution",
    "CacheStats",
    "Execution",
    "QueryExecutor",
    "WHYNOT_MODELS",
    "WhyNotBatchExecution",
    "WhyNotExecution",
    "WhyNotExecutor",
    "WhyNotQuestion",
    "consistent_stats",
    "query_fingerprint",
    "whynot_fingerprint",
]


def query_fingerprint(query: SpatialKeywordQuery) -> str:
    """Canonical cache key: location, sorted keywords, ``k`` and weights.

    ``repr`` round-trips floats exactly and quotes each keyword, so
    queries only share a fingerprint when every parameter is
    bit-identical — the cache never conflates "nearby" queries, and
    keywords containing separator characters (HTTP payloads carry
    arbitrary unnormalised strings) cannot collide with a multi-keyword
    query.
    """
    return repr(
        (
            query.loc.x,
            query.loc.y,
            query.k,
            query.ws,
            query.wt,
            tuple(sorted(query.doc)),
        )
    )


#: The dispatchable why-not models.  ``"full"`` is the paper's complete
#: answer (explanation plus both refinements, Section 3.2's "users can
#: apply the two refinement functions simultaneously" view); the others
#: select one module.
WHYNOT_MODELS = ("full", "explain", "preference", "keywords", "combined")

#: Models whose computation consumes the initial top-k result (the
#: explanation generator's not-missing check and k-th-object comparison).
#: The preference/keyword/combined refiners rank in dual space and never
#: need the materialised result, so the executor skips fetching it.
_MODELS_USING_INITIAL = ("full", "explain")

#: Models whose answer does not depend on the penalty trade-off λ (the
#: explanation has no refinement to weigh).  Their fingerprints
#: canonicalise λ away so e.g. ``explain`` questions at λ=0.3 and λ=0.5
#: share one cache entry instead of recomputing the identical answer.
_MODELS_IGNORING_LAMBDA = ("explain",)


@dataclass(frozen=True, slots=True)
class WhyNotQuestion:
    """One why-not question: a query, its missing objects and a model.

    ``missing`` holds object ids or names exactly as the client sent
    them; the executor canonicalises them to sorted object ids when
    fingerprinting, so ``(1, 2)``, ``(2, 1, 2)`` and the objects' names
    all address the same cache entry.
    """

    query: SpatialKeywordQuery
    missing: tuple[int | str, ...]
    model: str = "full"
    lam: float = 0.5

    def __post_init__(self) -> None:
        if not self.missing:
            raise ValueError("a why-not question needs at least one missing object")
        if self.model not in WHYNOT_MODELS:
            raise ValueError(
                f"unknown why-not model {self.model!r}; expected one of {WHYNOT_MODELS}"
            )
        if not 0.0 <= self.lam <= 1.0:
            raise ValueError("lambda must lie in [0, 1]")


def whynot_fingerprint(
    query: SpatialKeywordQuery,
    missing_oids: Sequence[int],
    model: str,
    lam: float,
) -> str:
    """Canonical cache key of a why-not question.

    Composes the underlying query's fingerprint with the *resolved*
    missing-object ids (sorted, deduplicated — resolution happens in the
    executor so a name and its id share a key), the refinement model and
    the penalty trade-off ``λ``.  ``repr`` round-trips ``λ`` exactly.
    """
    return repr(
        (
            query_fingerprint(query),
            tuple(sorted(set(missing_oids))),
            model,
            lam,
        )
    )


class SupportsQuery(Protocol):
    """The slice of :class:`~repro.service.api.YaskEngine` the executor needs."""

    def query(self, query: SpatialKeywordQuery) -> QueryResult: ...


class SupportsWhyNot(Protocol):
    """What :class:`WhyNotExecutor` needs from an engine.

    :class:`~repro.service.api.YaskEngine` provides both methods; tests
    may substitute lighter stubs.
    """

    def resolve_missing_oids(
        self, references: Sequence[int | str]
    ) -> tuple[int, ...]: ...

    def answer_whynot(
        self, question: WhyNotQuestion, *, initial_result: QueryResult | None = None
    ) -> object: ...


@dataclass(frozen=True, slots=True)
class CacheStats:
    """A point-in-time snapshot of the executor's cache counters.

    ``scoped_*`` count the live-mutation tier's scoped invalidations:
    ``scoped_dropped`` entries failed the could-this-batch-affect-you
    test and were evicted, ``scoped_kept`` provably could not change
    and survived the write — the counter that shows warm caches staying
    warm under write traffic.

    ``maintained_*`` and ``skyband_rescans`` count the patch-on-write
    tier (:meth:`QueryExecutor.maintain`): per maintenance pass an
    entry is ``maintained_kept`` (provably unchanged, restamped),
    ``maintained_patched`` (skyband merge or rank repair produced the
    post-batch answer in O(Δ)), ``maintained_dropped`` (no proof and no
    repair — evicted exactly like drop-on-write), or counted in
    ``skyband_rescans`` (deletes underflowed the skyband below ``k``;
    the entry is evicted and the next fetch re-primes the buffer).
    """

    hits: int
    misses: int
    evictions: int
    invalidations: int
    inflight_waits: int
    size: int
    capacity: int
    scoped_invalidations: int = 0
    scoped_dropped: int = 0
    scoped_kept: int = 0
    maintenance_passes: int = 0
    maintained_kept: int = 0
    maintained_patched: int = 0
    maintained_dropped: int = 0
    skyband_rescans: int = 0

    @property
    def requests(self) -> int:
        """Total queries handled, regardless of how they were served."""
        return self.hits + self.misses + self.inflight_waits

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served without an engine execution."""
        if self.requests == 0:
            return 0.0
        return (self.hits + self.inflight_waits) / self.requests

    def to_dict(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "inflight_waits": self.inflight_waits,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
            "scoped_invalidations": self.scoped_invalidations,
            "scoped_dropped": self.scoped_dropped,
            "scoped_kept": self.scoped_kept,
            "maintenance_passes": self.maintenance_passes,
            "maintained_kept": self.maintained_kept,
            "maintained_patched": self.maintained_patched,
            "maintained_dropped": self.maintained_dropped,
            "skyband_rescans": self.skyband_rescans,
        }


@dataclass(frozen=True, slots=True)
class Execution:
    """One executed query with its provenance and server-side latency.

    ``source`` is ``"engine"`` (a fresh index traversal), ``"cache"``
    (served from the LRU cache) or ``"inflight"`` (piggy-backed on an
    identical concurrent execution).

    ``degraded`` is None for an exact answer; under a deadline that ran
    out it is the honest-envelope dict
    (:meth:`repro.faults.Deadline.to_dict`) and ``result`` holds the
    partial top-k assembled from the shards that did answer.  Degraded
    results are never cached.
    """

    query: SpatialKeywordQuery
    result: QueryResult
    response_ms: float
    source: str
    fingerprint: str
    degraded: dict | None = None

    @property
    def cached(self) -> bool:
        """True when no engine execution was charged to this request."""
        return self.source != "engine"


@dataclass(frozen=True, slots=True)
class BatchExecution:
    """The outcome of one batch: per-query executions plus wall time."""

    executions: tuple[Execution, ...]
    total_ms: float

    @property
    def results(self) -> tuple[QueryResult, ...]:
        return tuple(execution.result for execution in self.executions)

    def __len__(self) -> int:
        return len(self.executions)

    def __iter__(self):
        return iter(self.executions)


@dataclass(frozen=True, slots=True)
class WhyNotExecution:
    """One answered why-not question with provenance and latency.

    ``source`` follows :class:`Execution`'s vocabulary (``"engine"``,
    ``"cache"``, ``"inflight"``) plus ``"error"`` for a batch member the
    engine rejected (``answer`` is then None and ``error`` the message)
    and ``"degraded"`` for a question whose deadline expired mid-answer
    (``answer`` is None, ``degraded`` the envelope — the refinement
    arithmetic either completes exactly or reports degradation, never a
    silently-wrong partial count).
    ``topk_source`` records where the initial top-k result came from
    when the model consumed one — ``"cache"`` is the tier doing its job:
    the question's underlying query never re-ran the search.  It is None
    for models that rank without the materialised result and for
    responses served from the why-not cache (nothing was computed).
    """

    question: WhyNotQuestion
    answer: object | None
    response_ms: float
    source: str
    fingerprint: str
    topk_source: str | None = None
    error: str | None = None
    degraded: dict | None = None

    @property
    def cached(self) -> bool:
        """True when no why-not computation was charged to this request."""
        return self.source not in ("engine", "error", "degraded")

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True, slots=True)
class WhyNotBatchExecution:
    """The outcome of one why-not batch: per-question executions + wall time."""

    executions: tuple[WhyNotExecution, ...]
    total_ms: float

    @property
    def answers(self) -> tuple[object | None, ...]:
        return tuple(execution.answer for execution in self.executions)

    def __len__(self) -> int:
        return len(self.executions)

    def __iter__(self):
        return iter(self.executions)


class _Inflight:
    """Rendezvous for threads waiting on one in-flight execution.

    ``generation`` records the cache generation the execution started
    under; a request arriving after an invalidation must not join a
    flight from the previous generation (its result may reflect the
    old dataset).
    """

    __slots__ = ("event", "result", "error", "generation")

    def __init__(self, generation: int) -> None:
        self.event = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.generation = generation


class _ResultCache:
    """Bounded LRU + in-flight dedup + generation counter, keyed by strings.

    The machinery both executors share.  ``fetch`` runs ``compute`` at
    most once per key across concurrent callers, caches the value (a
    result is assumed non-None) unless an invalidation raced the
    computation, and reports how each call was served.  The generation
    counter makes invalidation safe against every in-flight path —
    single executions and batch members alike reach the cache through
    this one method, so a post-invalidation request can neither read a
    pre-invalidation cache entry (the cache was cleared atomically) nor
    join a pre-invalidation flight (its generation no longer matches).
    """

    def __init__(self, capacity: int, *, name: str = "executor.cache") -> None:
        if capacity < 0:
            raise ValueError("cache_capacity must be non-negative")
        self.capacity = capacity
        # Leaf of the lock hierarchy: taken after the domain lock
        # during invalidation, never while acquiring anything else.
        self._lock = concurrency.ordered_lock(name, concurrency.LEVEL_LEAF)
        # key → (value, meta).  ``meta`` is the caller's invalidation
        # descriptor (see ``fetch``'s ``meta_of``); None when the caller
        # supplied none — such entries never survive a scoped drop.
        self._cache: "OrderedDict[str, tuple[Any, Any]]" = OrderedDict()
        self.inflight: dict[str, _Inflight] = {}
        self._generation = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._inflight_waits = 0
        self._scoped_invalidations = 0
        self._scoped_dropped = 0
        self._scoped_kept = 0
        self._maintenance_passes = 0
        self._maintained_kept = 0
        self._maintained_patched = 0
        self._maintained_dropped = 0
        self._skyband_rescans = 0

    def fetch(
        self,
        key: str,
        compute: Callable[[], Any],
        meta_of: Callable[[Any], Any] | None = None,
    ) -> tuple[Any, str]:
        """Return ``(value, source)``, computing at most once per key.

        ``meta_of`` derives the cached entry's invalidation descriptor
        from a freshly computed value; scoped invalidation
        (:meth:`invalidate_where`) tests it to decide which entries a
        mutation batch could have affected.
        """
        while True:
            with self._lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self._hits += 1
                    return cached[0], "cache"
                flight = self.inflight.get(key)
                if flight is None or flight.generation != self._generation:
                    # No flight, or only one from before an invalidation —
                    # its result may reflect the old dataset, so this
                    # request starts a fresh computation (stale waiters
                    # keep their reference and still get the old flight's
                    # result, which was current when *they* asked).
                    flight = _Inflight(self._generation)
                    self.inflight[key] = flight
                    leader = True
                else:
                    leader = False

            if leader:
                return (
                    self._compute_as_leader(key, flight, compute, meta_of),
                    "engine",
                )
            flight.event.wait()
            if flight.error is not None or flight.result is None:
                # The leader failed; this follower retries on its own
                # rather than reporting a failure it did not cause.
                continue
            with self._lock:
                self._inflight_waits += 1
            return flight.result, "inflight"

    def _compute_as_leader(
        self,
        key: str,
        flight: _Inflight,
        compute: Callable[[], Any],
        meta_of: Callable[[Any], Any] | None = None,
    ) -> Any:
        try:
            result = compute()
        except BaseException as exc:
            with self._lock:
                if self.inflight.get(key) is flight:
                    del self.inflight[key]
            flight.error = exc
            flight.event.set()
            raise
        meta = meta_of(result) if meta_of is not None else None
        with self._lock:
            self._misses += 1
            # Only cache when no invalidation raced this computation: a
            # result computed against the old dataset must not survive.
            if self.capacity > 0 and flight.generation == self._generation:
                self._cache[key] = (result, meta)
                self._cache.move_to_end(key)
                while len(self._cache) > self.capacity:
                    self._cache.popitem(last=False)
                    self._evictions += 1
            # A post-invalidation request may have replaced this flight
            # with a fresh-generation one; only deregister our own.
            if self.inflight.get(key) is flight:
                del self.inflight[key]
        flight.result = result
        flight.event.set()
        return result

    def peek(self, key: str) -> tuple[Any, str] | None:
        """Cache-only lookup: ``(value, "cache")`` on a hit, else None.

        The deadline-bounded execution path uses this instead of
        :meth:`fetch`: a cached value is exact and free, but a miss must
        neither join nor lead an open-ended in-flight rendezvous — the
        caller computes under its own deadline and decides afterwards
        (via :meth:`put`) whether the result is exact enough to cache.
        A miss is counted here; :meth:`put` adds no second count.
        """
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._hits += 1
                return cached[0], "cache"
            self._misses += 1
            return None

    def generation(self) -> int:
        """The current invalidation generation (pair with :meth:`put`)."""
        with self._lock:
            return self._generation

    def put(self, key: str, value: Any, meta: Any, generation: int) -> bool:
        """Insert a value computed outside :meth:`fetch`; True if stored.

        ``generation`` is the :meth:`generation` observed before the
        computation began: if an invalidation landed in between, the
        value may reflect the old dataset and is discarded.
        """
        with self._lock:
            if self.capacity <= 0 or generation != self._generation:
                return False
            self._cache[key] = (value, meta)
            self._cache.move_to_end(key)
            while len(self._cache) > self.capacity:
                self._cache.popitem(last=False)
                self._evictions += 1
            return True

    def invalidate(self) -> int:
        """Drop every cached value; returns how many were dropped.

        In-flight computations complete normally but are barred from
        (re)populating the cache.
        """
        with self._lock:
            dropped = len(self._cache)
            self._cache.clear()
            self._generation += 1
            self._invalidations += 1
            return dropped

    def invalidate_where(self, affected: Callable[[Any], bool]) -> tuple[int, int]:
        """Drop entries whose meta tests affected; returns (dropped, kept).

        Entries without a meta descriptor are dropped unconditionally —
        absence of evidence is not evidence of safety.  The generation
        still advances: an in-flight computation may have read the
        pre-mutation dataset, and by the time it lands the batch summary
        it would need testing against is gone, so it must not populate
        the cache even under an unaffected key.
        """
        with self._lock:
            survivors: "OrderedDict[str, tuple[Any, Any]]" = OrderedDict()
            dropped = 0
            for key, (value, meta) in self._cache.items():
                if meta is None or affected(meta):
                    dropped += 1
                else:
                    survivors[key] = (value, meta)
            self._cache = survivors
            self._generation += 1
            self._scoped_invalidations += 1
            self._scoped_dropped += dropped
            self._scoped_kept += len(survivors)
            return dropped, len(survivors)

    def peek_entry(self, key: str) -> tuple[Any, Any] | None:
        """Introspective ``(value, meta)`` lookup: no counters, no LRU move.

        The why-not executor uses this to learn which engine generation
        a cached initial top-k result was computed under, without
        charging a second hit for the same request.
        """
        with self._lock:
            return self._cache.get(key)

    def entries_snapshot(self) -> tuple[int, tuple[tuple[str, Any, Any], ...]]:
        """``(generation, ((key, value, meta), ...))`` under the leaf lock.

        First half of the two-phase maintenance protocol: the caller
        computes per-entry patches *outside* this cache's leaf lock
        (patching may consult the engine under its read lock, which
        ranks below the leaf level) and applies them atomically with
        :meth:`apply_maintenance`.
        """
        with self._lock:
            return self._generation, tuple(
                (key, value, meta) for key, (value, meta) in self._cache.items()
            )

    def apply_maintenance(
        self,
        snapshot_generation: int,
        patches: dict[str, tuple[Any, str, Any, Any]],
        *,
        current: Callable[[Any], bool],
    ) -> dict[str, int]:
        """Apply patch-on-write decisions; returns the action tally.

        ``patches`` maps each snapshotted key to ``(snapshot_value,
        action, new_value, new_meta)`` where ``action`` is ``"kept"``,
        ``"patched"``, ``"dropped"`` or ``"rescan"``.  A patch only
        applies when the entry still holds the snapshotted value (an
        eviction + fresh recompute in the window must not be clobbered
        with a patch of the evicted value).  Entries that appeared
        after the snapshot are kept only when ``current(meta)`` proves
        they were computed against the post-batch dataset; anything
        else in the window raced the mutation and is dropped.

        The generation advances exactly as in :meth:`invalidate_where`,
        for the same reason: an in-flight computation that read the
        pre-mutation dataset must not land afterwards.
        """
        tally = {"kept": 0, "patched": 0, "dropped": 0, "rescans": 0}
        with self._lock:
            if self._generation != snapshot_generation:
                # A whole-domain invalidation raced the patch
                # computation; it already cleared everything the
                # patches describe, so there is nothing left to fix.
                return tally
            survivors: "OrderedDict[str, tuple[Any, Any]]" = OrderedDict()
            for key, (value, meta) in self._cache.items():
                patch = patches.get(key)
                if patch is None or patch[0] is not value:
                    if current(meta):
                        survivors[key] = (value, meta)
                    else:
                        tally["dropped"] += 1
                    continue
                _, action, new_value, new_meta = patch
                if action == "kept":
                    survivors[key] = (new_value, new_meta)
                    tally["kept"] += 1
                elif action == "patched":
                    survivors[key] = (new_value, new_meta)
                    tally["patched"] += 1
                elif action == "rescan":
                    tally["rescans"] += 1
                else:
                    tally["dropped"] += 1
            self._cache = survivors
            self._generation += 1
            self._maintenance_passes += 1
            self._maintained_kept += tally["kept"]
            self._maintained_patched += tally["patched"]
            self._maintained_dropped += tally["dropped"]
            self._skyband_rescans += tally["rescans"]
            return tally

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                inflight_waits=self._inflight_waits,
                size=len(self._cache),
                capacity=self.capacity,
                scoped_invalidations=self._scoped_invalidations,
                scoped_dropped=self._scoped_dropped,
                scoped_kept=self._scoped_kept,
                maintenance_passes=self._maintenance_passes,
                maintained_kept=self._maintained_kept,
                maintained_patched=self._maintained_patched,
                maintained_dropped=self._maintained_dropped,
                skyband_rescans=self._skyband_rescans,
            )

    def keys(self) -> tuple[str, ...]:
        """Cached keys in eviction order (least recently used first)."""
        with self._lock:
            return tuple(self._cache)


@dataclass(frozen=True, slots=True)
class _QueryMeta:
    """Invalidation descriptor of one cached top-k result.

    Exactly what :meth:`repro.core.mutations.BatchSummary.affects_topk`
    needs to decide whether a mutation batch could change the result:
    the query's parameters, the member ids, the k-th (lowest) score and
    whether the result is full (``len(entries) == k``).
    """

    loc: Any
    doc: frozenset[str]
    ws: float
    wt: float
    kth_score: float
    result_oids: frozenset[int]
    full: bool

    @classmethod
    def of(cls, result: QueryResult) -> "_QueryMeta | None":
        """Derive a descriptor, or None for non-result values.

        Test doubles (and any engine stub) may return arbitrary
        objects; entries without a descriptor are simply dropped
        unconditionally by scoped invalidation.
        """
        query = getattr(result, "query", None)
        entries = getattr(result, "entries", None)
        if query is None or entries is None:
            return None
        return cls(
            loc=query.loc,
            doc=query.doc,
            ws=query.ws,
            wt=query.wt,
            kth_score=entries[-1].score if entries else float("-inf"),
            result_oids=frozenset(entry.obj.oid for entry in entries),
            full=len(entries) >= query.k,
        )


@dataclass(frozen=True, slots=True)
class _SkybandMeta(_QueryMeta):
    """Maintenance descriptor of one cached top-k result with a skyband.

    ``entries`` holds the *extended* ranked buffer (up to ``k + delta``
    entries: the served ``k`` plus the skyband of runners-up below
    them), ``complete`` records whether the buffer exhausted the
    database (the extended query returned fewer than ``k + delta``
    entries — then membership of any insertion is decidable without a
    tail threshold), and ``generation`` stamps the engine generation
    the buffer was computed under, so :meth:`QueryExecutor.maintain`
    can apply exactly the one mutation batch that advances it.

    The inherited ``kth_score`` / ``result_oids`` / ``full`` fields
    describe the **buffer**, not the served prefix: a scoped
    invalidation keep then proves the whole buffer (and a fortiori the
    served result) unchanged, which keeps a later restamp sound.
    """

    query: SpatialKeywordQuery = None  # type: ignore[assignment]
    entries: tuple[RankedObject, ...] = ()
    complete: bool = False
    generation: int | None = None
    delta: int = 0


@dataclass(frozen=True, slots=True)
class _WhyNotMeta:
    """Maintenance descriptor of one cached why-not answer.

    Exactly the fields
    :meth:`repro.core.mutations.BatchSummary.affects_whynot` tests
    (``missing_oids`` / ``loc`` / ``keyword_universe`` /
    ``min_missing_prox`` / ``initial``), plus what rank repair needs:
    the original question and the engine generation the answer was
    computed under.  ``keyword_universe`` is ``q.doc ∪ ⋃ missing
    docs`` — the keyword adapter only edits within this set, so a
    delta object disjoint from it has TSim 0 under every candidate
    refinement.
    """

    missing_oids: frozenset[int]
    loc: Any
    keyword_universe: frozenset[str]
    min_missing_prox: float
    initial: _QueryMeta | None
    question: WhyNotQuestion
    generation: int | None


class QueryExecutor:
    """Thread-safe caching/deduplicating/batching front of a query engine.

    Parameters
    ----------
    engine:
        Any object with a ``query(SpatialKeywordQuery) -> QueryResult``
        method — in the service, the :class:`YaskEngine`.
    cache_capacity:
        Maximum number of cached results; the least recently *used*
        entry is evicted first.  ``0`` disables caching (in-flight
        dedup still applies).
    max_workers:
        Worker-pool width for :meth:`execute_batch`.
    skyband_delta:
        Width Δ of the k-skyband buffer each cached entry keeps below
        the served ``k`` (requires an engine exposing ``read_view`` /
        ``generation``; 0 keeps plain entries).  A wider skyband
        absorbs more member-deletes before a
        :attr:`CacheStats.skyband_rescans` eviction; inserts are merged
        in O(Δ) regardless.
    """

    def __init__(
        self,
        engine: SupportsQuery,
        *,
        cache_capacity: int = 1024,
        max_workers: int = 8,
        skyband_delta: int = 0,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if skyband_delta < 0:
            raise ValueError("skyband_delta must be non-negative")
        self._engine = engine
        self._cache = _ResultCache(cache_capacity)
        self._max_workers = max_workers
        self._skyband_delta = skyband_delta
        # One pool for the executor's lifetime (threads spawn lazily on
        # first use), not one per batch: a per-request pool would pay
        # thread startup/teardown on the serving hot path.
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="yask-executor"
            )
            if max_workers > 1
            else None
        )
        # Caches living in the same invalidation domain (the why-not
        # executor registers here): invalidating this executor drops
        # them too, because their values derive from the same dataset.
        # Each record is (drop, scoped, maintain); scoped/maintain are
        # None for caches that only support wholesale drops.
        self._linked_invalidations: list[
            tuple[
                Callable[[], int],
                Callable[[Any], tuple[int, int]] | None,
                Callable[[Any, int | None], dict[str, int]] | None,
            ]
        ] = []
        # Serialises a whole-domain invalidation against whole-domain
        # stats snapshots: holding it across both cache drops (and, in
        # consistent_stats, across both stats reads) means no reader
        # can observe this cache from one generation and a linked cache
        # from another.  Per-cache locks are acquired inside it, never
        # the other way around, so there is no ordering hazard.
        self._domain_lock = concurrency.ordered_lock(
            "executor.domain", concurrency.LEVEL_DOMAIN
        )

    @property
    def engine(self) -> SupportsQuery:
        return self._engine

    @property
    def capacity(self) -> int:
        return self._cache.capacity

    @property
    def _inflight(self) -> dict[str, _Inflight]:
        """The in-flight registry (exposed for tests and introspection)."""
        return self._cache.inflight

    # ------------------------------------------------------------------
    # Single-query execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query: SpatialKeywordQuery,
        *,
        deadline: "faults.Deadline | None" = None,
    ) -> Execution:
        """Execute a query through the cache and in-flight dedup layers.

        With a ``deadline`` the engine call runs under an *absorbing*
        deadline scope (:func:`repro.faults.deadline_scope`): the
        sharded scatter skips shards past the budget and absorbs shard
        failures, and the execution carries the honest ``degraded``
        envelope when anything was skipped.  A cache hit is served as
        usual (exact, free); a degraded result is never cached and the
        in-flight rendezvous is bypassed — waiting on another request's
        open-ended computation would defeat the budget.
        """
        fingerprint = query_fingerprint(query)
        started = time.perf_counter()
        if deadline is None:
            holder: list[tuple[QueryResult, int | None]] = []

            def compute() -> QueryResult:
                del holder[:]
                read_view = getattr(self._engine, "read_view", None)
                if read_view is None:
                    # Stub engines: plain entry, drop-on-write semantics.
                    return self._engine.query(query)
                delta = self._skyband_delta
                extended_query = (
                    query.with_k(query.k + delta) if delta > 0 else query
                )
                with read_view():
                    generation = getattr(self._engine, "generation", None)
                    extended = self._engine.query(extended_query)
                if delta > 0:
                    # The served result is the exact top-k prefix of the
                    # extended buffer (same floats, same tie order).
                    result = QueryResult(query, extended.entries[: query.k])
                else:
                    result = extended
                holder.append((extended, generation))
                return result

            def meta_of(result: QueryResult) -> Any:
                if not holder:
                    return _QueryMeta.of(result)
                extended, generation = holder[0]
                return self._skyband_meta(query, result, extended, generation)

            result, source = self._cache.fetch(fingerprint, compute, meta_of)
            return Execution(
                query=query,
                result=result,
                response_ms=(time.perf_counter() - started) * 1000.0,
                source=source,
                fingerprint=fingerprint,
            )
        peeked = self._cache.peek(fingerprint)
        if peeked is not None:
            return Execution(
                query=query,
                result=peeked[0],
                response_ms=(time.perf_counter() - started) * 1000.0,
                source="cache",
                fingerprint=fingerprint,
            )
        generation = self._cache.generation()
        with faults.deadline_scope(deadline):
            result = self._engine.query(query)
        if not deadline.degraded:
            self._cache.put(
                fingerprint, result, _QueryMeta.of(result), generation
            )
        return Execution(
            query=query,
            result=result,
            response_ms=(time.perf_counter() - started) * 1000.0,
            source="engine",
            fingerprint=fingerprint,
            degraded=deadline.to_dict() if deadline.degraded else None,
        )

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def execute_batch(
        self,
        queries: Sequence[SpatialKeywordQuery],
        *,
        deadline: "faults.Deadline | None" = None,
    ) -> BatchExecution:
        """Fan a list of queries across the worker pool, order-preserving.

        Duplicates inside a batch flow through the same cache and
        in-flight dedup as everything else, so a batch of one popular
        query repeated a hundred times costs one index traversal.  A
        ``deadline`` is one budget *shared* across the whole batch; the
        batch then runs sequentially (deterministic member order — the
        budget runs out at the same member every time).
        """
        started = time.perf_counter()
        if not queries:
            return BatchExecution(executions=(), total_ms=0.0)
        if deadline is not None or self._pool is None or len(queries) == 1:
            executions = tuple(
                self.execute(query, deadline=deadline) for query in queries
            )
        else:
            executions = tuple(self._pool.map(self.execute, queries))
        return BatchExecution(
            executions=executions,
            total_ms=(time.perf_counter() - started) * 1000.0,
        )

    def close(self) -> None:
        """Shut down the worker pool (idempotent; the cache survives)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Cache management and introspection
    # ------------------------------------------------------------------
    def link_invalidation(
        self,
        drop: Callable[[], int],
        *,
        scoped: Callable[[Any], tuple[int, int]] | None = None,
        maintain: Callable[[Any, int | None], dict[str, int]] | None = None,
    ) -> None:
        """Register a dependent cache to drop whenever this one drops.

        The why-not executor's answers are derived from the same dataset
        as the top-k results, so both caches form one invalidation
        domain: :meth:`invalidate` here cascades into every linked
        ``drop`` callable (and :meth:`WhyNotExecutor.invalidate`
        delegates back here).  ``scoped`` (called with a
        :class:`~repro.core.mutations.BatchSummary`, returning a
        ``(dropped, kept)`` pair) lets the linked cache apply its own
        could-this-affect-you test during :meth:`invalidate_scoped`
        instead of dropping wholesale; ``maintain`` (called with the
        summary and the current engine generation) cascades
        :meth:`maintain` passes the same way.
        """
        self._linked_invalidations.append((drop, scoped, maintain))

    def invalidate(self) -> int:
        """Drop every cached result (the dataset changed); returns count.

        Executions already in flight complete normally but are barred
        from (re)populating the cache.  Linked caches (see
        :meth:`link_invalidation`) are dropped too; the returned count
        covers only this executor's own entries.  The domain lock makes
        the cascade atomic with respect to :func:`consistent_stats`
        snapshots.
        """
        with self._domain_lock:
            dropped = self._cache.invalidate()
            for drop, _, _ in self._linked_invalidations:
                drop()
            return dropped

    def invalidate_scoped(self, summary) -> dict[str, int]:
        """Drop only the cached results a mutation batch could affect.

        ``summary`` is the applied batch's
        :class:`~repro.core.mutations.BatchSummary`; an entry survives
        only when the summary *proves* the batch cannot change it (no
        removed/added id in the result, and every added object's score
        bound strictly below the cached k-th score).  Linked why-not
        caches apply their own scoped test
        (:meth:`~repro.core.mutations.BatchSummary.affects_whynot`'s
        dominance argument) when they registered one; caches without a
        scoped callback are dropped wholesale — conservatism over
        staleness.

        Returns the drop/keep tally for the mutation report and stats.
        """
        with self._domain_lock:
            dropped, kept = self._cache.invalidate_where(summary.affects_topk)
            linked_dropped = 0
            linked_kept = 0
            for drop, scoped, _ in self._linked_invalidations:
                if scoped is not None:
                    scoped_dropped, scoped_kept = scoped(summary)
                    linked_dropped += scoped_dropped
                    linked_kept += scoped_kept
                else:
                    linked_dropped += drop()
            return {
                "dropped": dropped,
                "kept": kept,
                "linked_dropped": linked_dropped,
                "linked_kept": linked_kept,
            }

    # ------------------------------------------------------------------
    # Patch-on-write maintenance
    # ------------------------------------------------------------------
    def _skyband_meta(
        self,
        query: SpatialKeywordQuery,
        result: QueryResult,
        extended: QueryResult,
        generation: int | None,
    ) -> "_SkybandMeta | None":
        entries = getattr(extended, "entries", None)
        if entries is None or getattr(result, "entries", None) is None:
            return None
        delta = self._skyband_delta
        return _SkybandMeta(
            loc=query.loc,
            doc=query.doc,
            ws=query.ws,
            wt=query.wt,
            # kth_score/result_oids/full describe the buffer (see class
            # docstring): a scoped keep must prove the skyband intact.
            kth_score=entries[-1].score if entries else float("-inf"),
            result_oids=frozenset(entry.obj.oid for entry in entries),
            full=len(entries) >= query.k + delta,
            query=query,
            entries=entries,
            complete=len(entries) < query.k + delta,
            generation=generation,
            delta=delta,
        )

    def maintain(self, change) -> dict[str, int]:
        """Patch cached answers through a mutation batch (patch-on-write).

        ``change`` is the applied batch
        (:class:`~repro.core.mutations.AppliedBatch`): its summary
        carries the delta objects as pre-encoded kernel rows, and
        ``change.appended`` the object instances those rows describe.
        Each cached entry is brought from the pre-batch to the
        post-batch dataset *arithmetically* — deletes prune the
        skyband, inserts are scored with
        :func:`repro.core.kernel.score_delta_rows` against the entry's
        own query scalars and merged in O(Δ) — so the maintained answer
        is bit-for-bit the answer a cold rescan would produce.  Entries
        the arithmetic cannot carry (skyband underflow, missing
        generation stamp, batches without kernel rows) are dropped
        exactly as :meth:`invalidate_scoped` would drop them.

        Linked why-not caches registered with a ``maintain`` callback
        are repaired in the same pass under the same domain lock.
        Returns the combined action tally.

        With ``skyband_delta=0`` the pass degrades to exactly the
        scoped drop-on-write of :meth:`invalidate_scoped` — affected
        entries drop, provably-unaffected entries keep, nothing is
        patched — so the knob is a true ablation switch.
        """
        if self._skyband_delta == 0:
            scoped = self.invalidate_scoped(change.summary)
            return {
                "kept": scoped["kept"],
                "patched": 0,
                "dropped": scoped["dropped"],
                "rescans": 0,
                "linked_kept": scoped["linked_kept"],
                "linked_patched": 0,
                "linked_dropped": scoped["linked_dropped"],
            }
        read_view = getattr(self._engine, "read_view", None)
        if read_view is None:
            return self._maintain_locked(change, None)
        # The engine read lock (level below the domain lock) is held
        # across the whole pass: the engine generation cannot advance
        # mid-maintenance, so engine-consulting repairs (why-not weight
        # intervals) see exactly the post-batch dataset.
        with read_view():
            engine_generation = getattr(self._engine, "generation", None)
            return self._maintain_locked(change, engine_generation)

    def _maintain_locked(
        self, change, engine_generation: int | None
    ) -> dict[str, int]:
        summary = change.summary
        with self._domain_lock:
            snapshot_generation, entries = self._cache.entries_snapshot()
            patch = self._topk_patch(change)
            patches = {
                key: (value,) + patch(value, meta)
                for key, value, meta in entries
            }

            def is_current(meta: Any) -> bool:
                stamp = getattr(meta, "generation", None)
                return stamp is not None and stamp >= summary.generation

            tally = self._cache.apply_maintenance(
                snapshot_generation, patches, current=is_current
            )
            result = {
                "kept": tally["kept"],
                "patched": tally["patched"],
                "dropped": tally["dropped"],
                "rescans": tally["rescans"],
                "linked_kept": 0,
                "linked_patched": 0,
                "linked_dropped": 0,
            }
            for drop, _, linked_maintain in self._linked_invalidations:
                if linked_maintain is not None:
                    linked = linked_maintain(summary, engine_generation)
                    result["linked_kept"] += linked["kept"]
                    result["linked_patched"] += linked["patched"]
                    result["linked_dropped"] += linked["dropped"]
                else:
                    result["linked_dropped"] += drop()
            return result

    def _topk_patch(
        self, change
    ) -> Callable[[Any, Any], tuple[str, Any, Any]]:
        summary = change.summary
        kernel = getattr(getattr(self._engine, "scorer", None), "kernel", None)

        def patch(value: Any, meta: Any) -> tuple[str, Any, Any]:
            if not isinstance(meta, _SkybandMeta):
                # Plain entries (deadline path, pre-maintenance caches):
                # keep-if-provably-unaffected, drop otherwise — exactly
                # the scoped-invalidation decision.
                if meta is not None and not summary.affects_topk(meta):
                    return ("kept", value, meta)
                return ("dropped", None, None)
            stamp = meta.generation
            if stamp is None:
                return ("dropped", None, None)
            if stamp >= summary.generation:
                # Already reflects this batch (another maintenance pass
                # or a post-batch recompute got here first).
                return ("kept", value, meta)
            if stamp != summary.generation - 1:
                # Missed an intermediate batch; the buffer cannot be
                # carried forward by this delta alone.
                return ("dropped", None, None)
            if summary.added_rows or not summary.added_oids:
                if kernel is None and summary.added_rows:
                    return ("dropped", None, None)
                return self._merge_skyband(value, meta, summary, change, kernel)
            # Additions without kernel rows (no interned kernel): fall
            # back to the bound test; a keep proves the whole buffer
            # (meta describes it) unchanged, so restamping is sound.
            if summary.affects_topk(meta):
                return ("dropped", None, None)
            return (
                "kept",
                value,
                dc_replace(meta, generation=summary.generation),
            )

        return patch

    def _merge_skyband(
        self, value: Any, meta: _SkybandMeta, summary, change, kernel
    ) -> tuple[str, Any, Any]:
        query = meta.query
        k = query.k
        removed = summary.removed_oids
        buffer = list(meta.entries)
        if removed:
            buffer = [e for e in buffer if e.obj.oid not in removed]
        complete = meta.complete
        if summary.added_rows:
            # Re-encode the query mask against the *current* vocabulary:
            # bit positions are append-only, so the mask is correct for
            # this batch's rows no matter how many batches interned
            # keywords since the buffer was cached.
            qmask, _ = kernel.vocabulary.encode_query(query.doc)
            scored = score_delta_rows(
                summary.added_rows,
                query.loc.x,
                query.loc.y,
                qmask,
                len(query.doc),
                query.ws,
                query.wt,
                normaliser=summary.normaliser,
                model_code=summary.model_code,
            )
            keyed = [((-e.score, e.obj.oid), e) for e in buffer]
            for (oid, score, sdist, tsim), obj in zip(scored, change.appended):
                key = (-score, oid)
                if not complete and (not keyed or key >= keyed[-1][0]):
                    # Below the buffer tail with unknown runners-up
                    # beneath it: provably outside the served top-k,
                    # and not admissible to the skyband either.
                    continue
                entry = RankedObject(
                    obj=obj, score=score, sdist=sdist, tsim=tsim, rank=0
                )
                insort(keyed, (key, entry))
            buffer = [entry for _, entry in keyed]
        cap = k + meta.delta
        if len(buffer) > cap:
            del buffer[cap:]
            complete = False
        if not complete and len(buffer) < k:
            # Skyband underflow: deletes consumed the buffer past the
            # served k and the runners-up below it are unknown — only a
            # rescan (the next fetch) can rebuild the answer.
            return ("rescan", None, None)
        renumbered = tuple(
            entry._replace(rank=position)
            for position, entry in enumerate(buffer, start=1)
        )
        served = renumbered[:k]
        new_meta = dc_replace(
            meta,
            kth_score=renumbered[-1].score if renumbered else float("-inf"),
            result_oids=frozenset(entry.obj.oid for entry in renumbered),
            full=len(renumbered) >= cap,
            entries=renumbered,
            complete=complete,
            generation=summary.generation,
        )
        old_entries = getattr(value, "entries", None)
        if old_entries is not None and tuple(old_entries) == served:
            return ("kept", value, new_meta)
        return ("patched", QueryResult(query, served), new_meta)

    def stats(self) -> CacheStats:
        return self._cache.stats()

    def cached_fingerprints(self) -> tuple[str, ...]:
        """Cached keys in eviction order (least recently used first)."""
        return self._cache.keys()

    def audit(self, query: SpatialKeywordQuery):
        """Execute (possibly from cache) and cross-check against the oracle.

        Extends :meth:`YaskEngine.audit`'s "are the returned objects
        really the best?" guarantee to the caching tier: a stale or
        corrupted cached result fails the audit exactly like a corrupted
        index would.  Returns the ``(execution, report)`` pair.
        """
        from repro.service.audit import audit_execution

        scorer = getattr(self._engine, "scorer", None)
        if scorer is None:
            raise TypeError(
                "executor.audit() requires an engine exposing a .scorer"
            )
        execution = self.execute(query)
        return execution, audit_execution(scorer, execution)


class WhyNotExecutor:
    """Caching/deduplicating/batching front of the why-not engine.

    Sits beside the :class:`QueryExecutor` the transports already share
    and gives why-not answering the same serving-tier properties — with
    two extra wrinkles:

    * **Top-k reuse.** The explanation half of a why-not answer starts
      from the initial query's top-k result.  Instead of re-running the
      search, the executor fetches that result through the top-k
      executor, so a why-not question about an already-cached query
      charges zero index traversals for it (``topk_source == "cache"``).
      A cold question primes the top-k cache as a side effect.
    * **Shared invalidation.** Why-not answers are derived from the same
      dataset as top-k results; on construction this executor links
      itself into the top-k executor's invalidation domain, so
      invalidating either drops both caches.

    Parameters
    ----------
    engine:
        An object providing ``resolve_missing_oids`` and
        ``answer_whynot`` — in the service, the :class:`YaskEngine`.
    topk:
        The :class:`QueryExecutor` to source initial top-k results from
        and to share the invalidation domain with.
    cache_capacity:
        Bound on cached why-not answers (LRU; 0 disables caching).
    max_workers:
        Worker-pool width for :meth:`execute_batch`.
    """

    def __init__(
        self,
        engine: SupportsWhyNot,
        topk: QueryExecutor,
        *,
        cache_capacity: int = 256,
        max_workers: int = 8,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self._engine = engine
        self._topk = topk
        self._cache = _ResultCache(cache_capacity, name="whynot.cache")
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="yask-whynot"
            )
            if max_workers > 1
            else None
        )
        topk.link_invalidation(
            self._cache.invalidate,
            scoped=self._scoped_invalidate,
            maintain=self.maintain,
        )

    @property
    def engine(self) -> SupportsWhyNot:
        return self._engine

    @property
    def topk_executor(self) -> QueryExecutor:
        return self._topk

    @property
    def capacity(self) -> int:
        return self._cache.capacity

    @property
    def _inflight(self) -> dict[str, _Inflight]:
        """The in-flight registry (exposed for tests and introspection)."""
        return self._cache.inflight

    # ------------------------------------------------------------------
    # Single-question execution
    # ------------------------------------------------------------------
    def fingerprint(self, question: WhyNotQuestion) -> str:
        """The question's canonical cache key (resolves missing refs).

        λ is canonicalised away for models whose answer does not depend
        on it.  Raises :class:`~repro.whynot.errors.UnknownObjectError`
        for references outside the database — before any cache state is
        touched, so malformed questions never occupy cache or flight
        slots.
        """
        oids = self._engine.resolve_missing_oids(question.missing)
        lam = (
            0.5 if question.model in _MODELS_IGNORING_LAMBDA else question.lam
        )
        return whynot_fingerprint(question.query, oids, question.model, lam)

    def execute(
        self,
        question: WhyNotQuestion,
        *,
        deadline: "faults.Deadline | None" = None,
    ) -> WhyNotExecution:
        """Answer a question through the cache and in-flight dedup layers.

        Engine rejections (:class:`~repro.whynot.errors.WhyNotError`,
        e.g. a "missing" object that is actually in the result)
        propagate to the caller and are never cached.

        With a ``deadline`` the answer computation runs under a
        *strict* deadline scope: why-not rank arithmetic is count-exact
        or worthless, so a budget that runs out mid-scan raises out of
        the engine and this method returns a ``source == "degraded"``
        execution (``answer`` None, ``degraded`` the envelope) instead
        of a silently-wrong partial count.  The initial top-k fetch
        stays outside the scope — it must be exact for the explanation
        to mean anything.  Degraded executions are never cached.
        """
        fingerprint = self.fingerprint(question)
        started = time.perf_counter()
        topk_source: str | None = None

        if deadline is None:
            holder: list[Any] = []

            def compute() -> object:
                nonlocal topk_source
                del holder[:]
                initial_result: QueryResult | None = None
                initial_generation: int | None = None
                if question.model in _MODELS_USING_INITIAL:
                    initial = self._topk.execute(question.query)
                    initial_result = initial.result
                    initial_generation = self._topk_result_generation(
                        question.query, initial.result
                    )
                    topk_source = initial.source
                read_view = getattr(self._engine, "read_view", None)
                if read_view is None:
                    return self._engine.answer_whynot(
                        question, initial_result=initial_result
                    )
                with read_view():
                    generation = getattr(self._engine, "generation", None)
                    if (
                        initial_result is not None
                        and initial_generation != generation
                    ):
                        # The cached initial cannot be proven to match
                        # this read view (it predates a mutation, or
                        # carries no stamp): recompute it inside the
                        # same snapshot so explanation and initial
                        # describe one dataset.
                        query_fn = getattr(self._engine, "query", None)
                        if query_fn is not None:
                            initial_result = query_fn(question.query)
                            topk_source = "engine"
                    answer = self._engine.answer_whynot(
                        question, initial_result=initial_result
                    )
                    holder.append(
                        self._whynot_meta(question, initial_result, generation)
                    )
                return answer

            def meta_of(answer: object) -> Any:
                return holder[0] if holder else None

            answer, source = self._cache.fetch(fingerprint, compute, meta_of)
            return WhyNotExecution(
                question=question,
                answer=answer,
                response_ms=(time.perf_counter() - started) * 1000.0,
                source=source,
                fingerprint=fingerprint,
                # topk_source is only meaningful when *this* call computed:
                # cache/inflight responses charged no top-k fetch at all.
                topk_source=topk_source if source == "engine" else None,
            )

        peeked = self._cache.peek(fingerprint)
        if peeked is not None:
            return WhyNotExecution(
                question=question,
                answer=peeked[0],
                response_ms=(time.perf_counter() - started) * 1000.0,
                source="cache",
                fingerprint=fingerprint,
            )
        generation = self._cache.generation()
        initial_result: QueryResult | None = None
        if question.model in _MODELS_USING_INITIAL:
            initial = self._topk.execute(question.query)
            initial_result = initial.result
            topk_source = initial.source
        try:
            with faults.strict_deadline_scope(deadline):
                answer = self._engine.answer_whynot(
                    question, initial_result=initial_result
                )
        except faults.DeadlineExceeded as exc:
            deadline.note_failed("why-not refinement exceeded the deadline")
            return WhyNotExecution(
                question=question,
                answer=None,
                response_ms=(time.perf_counter() - started) * 1000.0,
                source="degraded",
                fingerprint=fingerprint,
                topk_source=topk_source,
                error=str(exc),
                degraded=deadline.to_dict(),
            )
        self._cache.put(fingerprint, answer, None, generation)
        return WhyNotExecution(
            question=question,
            answer=answer,
            response_ms=(time.perf_counter() - started) * 1000.0,
            source="engine",
            fingerprint=fingerprint,
            topk_source=topk_source,
        )

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def execute_batch(
        self, questions: Sequence[WhyNotQuestion]
    ) -> WhyNotBatchExecution:
        """Fan independent questions across the worker pool, in order.

        Engine rejections (e.g. one question's object is not actually
        missing) are captured per member as ``source == "error"``
        executions instead of failing the whole batch — a batch mixes
        unrelated users' questions, and one ill-posed question must not
        void the others' answers.
        """
        started = time.perf_counter()
        if not questions:
            return WhyNotBatchExecution(executions=(), total_ms=0.0)
        if self._pool is None or len(questions) == 1:
            executions = tuple(
                self._execute_capturing_errors(question)
                for question in questions
            )
        else:
            executions = tuple(
                self._pool.map(self._execute_capturing_errors, questions)
            )
        return WhyNotBatchExecution(
            executions=executions,
            total_ms=(time.perf_counter() - started) * 1000.0,
        )

    def _execute_capturing_errors(
        self, question: WhyNotQuestion
    ) -> WhyNotExecution:
        started = time.perf_counter()
        try:
            return self.execute(question)
        except WhyNotError as exc:
            return WhyNotExecution(
                question=question,
                answer=None,
                response_ms=(time.perf_counter() - started) * 1000.0,
                source="error",
                fingerprint="",
                error=str(exc),
            )

    def close(self) -> None:
        """Shut down the worker pool (idempotent; the cache survives)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Cache management and introspection
    # ------------------------------------------------------------------
    def _topk_result_generation(
        self, query: SpatialKeywordQuery, result: QueryResult
    ) -> int | None:
        """The engine generation ``result`` was computed under, if known.

        Probes the top-k cache's entry for the query (no counters, no
        LRU move) and trusts its stamp only when the cached value *is*
        the result object in hand — a refresh racing in between must
        not lend its stamp to an older result.
        """
        probe = self._topk._cache.peek_entry(query_fingerprint(query))
        if probe is None or probe[0] is not result:
            return None
        return getattr(probe[1], "generation", None)

    def _whynot_meta(
        self,
        question: WhyNotQuestion,
        initial_result: QueryResult | None,
        generation: int | None,
    ) -> "_WhyNotMeta | None":
        """Build the maintenance descriptor (call under the read view).

        None when the engine does not expose the why-not internals
        (stub engines) or the model needs an initial result that could
        not be described — such entries keep drop-on-write semantics.
        """
        whynot_engine = getattr(self._engine, "whynot", None)
        scorer = getattr(self._engine, "scorer", None)
        if whynot_engine is None or scorer is None:
            return None
        try:
            missing = tuple(whynot_engine.resolve_missing(question.missing))
        except Exception:
            return None
        if not missing:
            return None
        initial_meta: _QueryMeta | None = None
        if question.model in _MODELS_USING_INITIAL:
            if initial_result is None:
                return None
            initial_meta = _QueryMeta.of(initial_result)
            if initial_meta is None:
                return None
        universe = frozenset(question.query.doc).union(
            *(obj.doc for obj in missing)
        )
        min_prox = min(
            1.0 - scorer.breakdown(obj, question.query).sdist
            for obj in missing
        )
        return _WhyNotMeta(
            missing_oids=frozenset(obj.oid for obj in missing),
            loc=question.query.loc,
            keyword_universe=universe,
            min_missing_prox=min_prox,
            initial=initial_meta,
            question=question,
            generation=generation,
        )

    def _scoped_invalidate(self, summary) -> tuple[int, int]:
        """Scoped drop for the shared-domain cascade: (dropped, kept).

        Applies :meth:`BatchSummary.affects_whynot`'s dominance test to
        every cached answer; entries without a descriptor drop
        unconditionally.  Runs under the top-k executor's domain lock
        (the caller holds it).
        """
        return self._cache.invalidate_where(summary.affects_whynot)

    def maintain(
        self, summary, engine_generation: int | None = None
    ) -> dict[str, int]:
        """Repair cached why-not answers through a mutation batch.

        Registered as the top-k executor's linked ``maintain`` callback
        and called under its domain lock and (when the engine has one)
        its read view, with ``engine_generation`` the generation read
        inside that view.  An entry survives when the dominance test
        proves the batch irrelevant (kept + restamped) or, for the
        ``explain`` model, when rank arithmetic over the batch's delta
        rows reproduces exactly what a cold re-explanation would
        compute (patched).  Everything else drops.
        """
        snapshot_generation, entries = self._cache.entries_snapshot()
        patches: dict[str, tuple[Any, str, Any, Any]] = {}
        for key, value, meta in entries:
            patches[key] = (value,) + self._maintenance_action(
                value, meta, summary, engine_generation
            )

        def is_current(meta: Any) -> bool:
            stamp = getattr(meta, "generation", None)
            return stamp is not None and stamp >= summary.generation

        return self._cache.apply_maintenance(
            snapshot_generation, patches, current=is_current
        )

    def _maintenance_action(
        self, value: Any, meta: Any, summary, engine_generation: int | None
    ) -> tuple[str, Any, Any]:
        if not isinstance(meta, _WhyNotMeta):
            return ("dropped", None, None)
        stamp = meta.generation
        if stamp is not None and stamp >= summary.generation:
            return ("kept", value, meta)
        if stamp is None or stamp != summary.generation - 1:
            return ("dropped", None, None)
        if not summary.affects_whynot(meta):
            # Dominance proof: the batch cannot change ranks, counts,
            # reasons or weight intervals for this answer.  The missing
            # objects themselves are untouched, so min_missing_prox and
            # the keyword universe are unchanged too — restamp.
            return (
                "kept",
                value,
                dc_replace(meta, generation=summary.generation),
            )
        repaired = self._repair_explain(value, meta, summary, engine_generation)
        if repaired is not None:
            new_value, new_meta = repaired
            return ("patched", new_value, new_meta)
        return ("dropped", None, None)

    def _repair_explain(
        self, value: Any, meta: _WhyNotMeta, summary, engine_generation: int | None
    ):
        """Rank-arithmetic repair of an ``explain`` answer, or None.

        Preconditions (any failure → caller drops the entry):

        * the engine generation equals the batch's — the weight-interval
          recompute below reads live index state, which must describe
          exactly the post-batch dataset;
        * the batch touches no missing object (their breakdowns, and so
          the reasons and ``min_missing_prox``, would change);
        * the initial top-k is provably unaffected — then every
          surviving member still outranks each missing object, so the
          k-th breakdown, the reason classification and the
          rank ≥ k+1 invariant all carry over; and
        * the batch carries kernel rows for its delta objects.

        Under those conditions the missing object's rank changes by
        exactly (added beaters − removed beaters): tombstoned rows
        score 0.0 and lose every tie-break in ``count_better``, so
        integer deltas over the batch's rows reproduce the cold count.
        The strictly-closer / strictly-more-similar counts shift the
        same way (raw hypot distances and model TSim from the rows
        match the explainer's scan comparisons bit-for-bit).
        """
        from repro.whynot.explanation import WhyNotExplanation

        question = meta.question
        if question.model != "explain" or not isinstance(
            value, WhyNotExplanation
        ):
            return None
        if engine_generation is None or engine_generation != summary.generation:
            return None
        touched = summary.removed_oids | summary.added_oids
        if touched & meta.missing_oids:
            return None
        if meta.initial is None or summary.affects_topk(meta.initial):
            return None
        if summary.added_oids and not summary.added_rows:
            return None
        if summary.removed_oids and not summary.removed_rows:
            return None
        kernel = getattr(getattr(self._engine, "scorer", None), "kernel", None)
        if kernel is None:
            return None
        whynot_engine = getattr(self._engine, "whynot", None)
        adjuster = getattr(whynot_engine, "preference_adjuster", None)
        needs_intervals = any(
            explanation.viable_ws_intervals is not None
            for explanation in value.explanations
        )
        if needs_intervals and adjuster is None:
            return None
        query = question.query
        qmask, _ = kernel.vocabulary.encode_query(query.doc)
        scored_added = (
            score_delta_rows(
                summary.added_rows,
                query.loc.x,
                query.loc.y,
                qmask,
                len(query.doc),
                query.ws,
                query.wt,
                normaliser=summary.normaliser,
                model_code=summary.model_code,
            )
            if summary.added_rows
            else []
        )
        scored_removed = (
            score_delta_rows(
                summary.removed_rows,
                query.loc.x,
                query.loc.y,
                qmask,
                len(query.doc),
                query.ws,
                query.wt,
                normaliser=summary.normaliser,
                model_code=summary.model_code,
            )
            if summary.removed_rows
            else []
        )
        hypot = math.hypot
        qx, qy = query.loc.x, query.loc.y
        new_explanations = []
        for explanation in value.explanations:
            # The kernel's total order is ascending (-score, oid); a
            # delta row "beats" the missing object exactly when its key
            # sorts before the target's — same tie rule as count_better.
            target_key = (-explanation.breakdown.score, explanation.obj.oid)
            target_tsim = explanation.breakdown.tsim
            raw_distance = explanation.obj.loc.distance_to(query.loc)
            added_beaters = sum(
                1
                for oid, score, _, _ in scored_added
                if (-score, oid) < target_key
            )
            removed_beaters = sum(
                1
                for oid, score, _, _ in scored_removed
                if (-score, oid) < target_key
            )
            added_closer = sum(
                1
                for x, y, _, _, _ in summary.added_rows
                if hypot(x - qx, y - qy) < raw_distance
            )
            removed_closer = sum(
                1
                for x, y, _, _, _ in summary.removed_rows
                if hypot(x - qx, y - qy) < raw_distance
            )
            added_similar = sum(
                1 for _, _, _, tsim in scored_added if tsim > target_tsim
            )
            removed_similar = sum(
                1 for _, _, _, tsim in scored_removed if tsim > target_tsim
            )
            intervals = explanation.viable_ws_intervals
            if intervals is not None:
                intervals = tuple(
                    adjuster.viable_weight_intervals(query, explanation.obj)
                )
            new_explanations.append(
                dc_replace(
                    explanation,
                    rank=explanation.rank + added_beaters - removed_beaters,
                    closer_objects=explanation.closer_objects
                    + added_closer
                    - removed_closer,
                    more_similar_objects=explanation.more_similar_objects
                    + added_similar
                    - removed_similar,
                    viable_ws_intervals=intervals,
                )
            )
        new_value = dc_replace(
            value,
            explanations=tuple(new_explanations),
            worst_rank=max(
                explanation.rank for explanation in new_explanations
            ),
        )
        new_meta = dc_replace(meta, generation=summary.generation)
        return new_value, new_meta

    def invalidate(self) -> int:
        """Invalidate the shared domain; returns why-not entries dropped.

        Delegates to the top-k executor, whose invalidation cascades
        back into this cache — the two caches always stale together.
        """
        dropped = self._cache.stats().size
        self._topk.invalidate()
        return dropped

    def stats(self) -> CacheStats:
        return self._cache.stats()

    def cached_fingerprints(self) -> tuple[str, ...]:
        """Cached keys in eviction order (least recently used first)."""
        return self._cache.keys()


def consistent_stats(
    topk: QueryExecutor,
    whynot: WhyNotExecutor,
) -> tuple[CacheStats, CacheStats]:
    """Snapshot both executors' stats from one cache generation.

    The two caches form a single invalidation domain, but an
    ``invalidate()`` drops them sequentially (top-k first, then the
    linked why-not cache), so two independent ``stats()`` reads racing
    an invalidation could observe a *mixed-generation* view — the
    top-k side already invalidated, the why-not side not yet.  Holding
    the domain lock across both reads excludes any concurrent
    invalidation cascade, so the pair always reflects one generation
    (their ``invalidations`` counters agree).  ``GET /api/stats``
    serves these snapshots.
    """
    with topk._domain_lock:
        return topk.stats(), whynot.stats()
