"""Shared query execution: request dedup, result caching and batching.

The paper's server caches only the per-session *initial* query
(Section 3.3): two users asking the same top-k question — or one user
asking it twice — pay the full index traversal every time, and the HTTP
layer moves exactly one query per request.  This module adds the serving
tier the ROADMAP's "heavy traffic from millions of users" north star
needs on top of the unchanged :class:`repro.service.api.YaskEngine`:

* :func:`query_fingerprint` — a canonical, order-insensitive key for a
  :class:`~repro.core.query.SpatialKeywordQuery`; two queries with the
  same location, keyword set, ``k`` and weights share one fingerprint.
* :class:`QueryExecutor` — a thread-safe front of the engine that
  (1) serves repeated queries from a bounded LRU result cache,
  (2) collapses identical *in-flight* queries so concurrent duplicates
  execute the index traversal once, and (3) fans query batches across a
  worker pool.  Hit/miss/eviction counters are exposed as
  :class:`CacheStats` and the cache can be invalidated explicitly when
  the dataset changes.

Cacheability rests on the same immutability the session cache already
relies on: the database, the indexes and :class:`QueryResult` are all
frozen after construction, so a cached result is exactly the result a
fresh traversal would produce until :meth:`QueryExecutor.invalidate`
declares otherwise.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.core.query import QueryResult, SpatialKeywordQuery

__all__ = [
    "BatchExecution",
    "CacheStats",
    "Execution",
    "QueryExecutor",
    "query_fingerprint",
]


def query_fingerprint(query: SpatialKeywordQuery) -> str:
    """Canonical cache key: location, sorted keywords, ``k`` and weights.

    ``repr`` round-trips floats exactly and quotes each keyword, so
    queries only share a fingerprint when every parameter is
    bit-identical — the cache never conflates "nearby" queries, and
    keywords containing separator characters (HTTP payloads carry
    arbitrary unnormalised strings) cannot collide with a multi-keyword
    query.
    """
    return repr(
        (
            query.loc.x,
            query.loc.y,
            query.k,
            query.ws,
            query.wt,
            tuple(sorted(query.doc)),
        )
    )


class SupportsQuery(Protocol):
    """The slice of :class:`~repro.service.api.YaskEngine` the executor needs."""

    def query(self, query: SpatialKeywordQuery) -> QueryResult: ...


@dataclass(frozen=True, slots=True)
class CacheStats:
    """A point-in-time snapshot of the executor's cache counters."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    inflight_waits: int
    size: int
    capacity: int

    @property
    def requests(self) -> int:
        """Total queries handled, regardless of how they were served."""
        return self.hits + self.misses + self.inflight_waits

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served without an engine execution."""
        if self.requests == 0:
            return 0.0
        return (self.hits + self.inflight_waits) / self.requests

    def to_dict(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "inflight_waits": self.inflight_waits,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True, slots=True)
class Execution:
    """One executed query with its provenance and server-side latency.

    ``source`` is ``"engine"`` (a fresh index traversal), ``"cache"``
    (served from the LRU cache) or ``"inflight"`` (piggy-backed on an
    identical concurrent execution).
    """

    query: SpatialKeywordQuery
    result: QueryResult
    response_ms: float
    source: str
    fingerprint: str

    @property
    def cached(self) -> bool:
        """True when no engine execution was charged to this request."""
        return self.source != "engine"


@dataclass(frozen=True, slots=True)
class BatchExecution:
    """The outcome of one batch: per-query executions plus wall time."""

    executions: tuple[Execution, ...]
    total_ms: float

    @property
    def results(self) -> tuple[QueryResult, ...]:
        return tuple(execution.result for execution in self.executions)

    def __len__(self) -> int:
        return len(self.executions)

    def __iter__(self):
        return iter(self.executions)


class _Inflight:
    """Rendezvous for threads waiting on one in-flight execution.

    ``generation`` records the cache generation the execution started
    under; a request arriving after an invalidation must not join a
    flight from the previous generation (its result may reflect the
    old dataset).
    """

    __slots__ = ("event", "result", "error", "generation")

    def __init__(self, generation: int) -> None:
        self.event = threading.Event()
        self.result: QueryResult | None = None
        self.error: BaseException | None = None
        self.generation = generation


class QueryExecutor:
    """Thread-safe caching/deduplicating/batching front of a query engine.

    Parameters
    ----------
    engine:
        Any object with a ``query(SpatialKeywordQuery) -> QueryResult``
        method — in the service, the :class:`YaskEngine`.
    cache_capacity:
        Maximum number of cached results; the least recently *used*
        entry is evicted first.  ``0`` disables caching (in-flight
        dedup still applies).
    max_workers:
        Worker-pool width for :meth:`execute_batch`.
    """

    def __init__(
        self,
        engine: SupportsQuery,
        *,
        cache_capacity: int = 1024,
        max_workers: int = 8,
    ) -> None:
        if cache_capacity < 0:
            raise ValueError("cache_capacity must be non-negative")
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self._engine = engine
        self._capacity = cache_capacity
        self._max_workers = max_workers
        # One pool for the executor's lifetime (threads spawn lazily on
        # first use), not one per batch: a per-request pool would pay
        # thread startup/teardown on the serving hot path.
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="yask-executor"
            )
            if max_workers > 1
            else None
        )
        self._lock = threading.Lock()
        self._cache: "OrderedDict[str, QueryResult]" = OrderedDict()
        self._inflight: dict[str, _Inflight] = {}
        # Bumped by invalidate(); an execution started under an older
        # generation must not populate the cache with a stale result.
        self._generation = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._inflight_waits = 0

    @property
    def engine(self) -> SupportsQuery:
        return self._engine

    @property
    def capacity(self) -> int:
        return self._capacity

    # ------------------------------------------------------------------
    # Single-query execution
    # ------------------------------------------------------------------
    def execute(self, query: SpatialKeywordQuery) -> Execution:
        """Execute a query through the cache and in-flight dedup layers."""
        fingerprint = query_fingerprint(query)
        started = time.perf_counter()
        with self._lock:
            cached = self._cache.get(fingerprint)
            if cached is not None:
                self._cache.move_to_end(fingerprint)
                self._hits += 1
                return Execution(
                    query=query,
                    result=cached,
                    response_ms=(time.perf_counter() - started) * 1000.0,
                    source="cache",
                    fingerprint=fingerprint,
                )
            flight = self._inflight.get(fingerprint)
            if flight is None or flight.generation != self._generation:
                # No flight, or only one from before an invalidation —
                # its result may reflect the old dataset, so this
                # request starts a fresh execution (stale waiters keep
                # their reference and still get the old flight's result,
                # which was current when *they* asked).
                flight = _Inflight(self._generation)
                self._inflight[fingerprint] = flight
                leader = True
            else:
                leader = False

        if leader:
            return self._execute_as_leader(query, fingerprint, flight, started)
        return self._wait_for_leader(query, fingerprint, flight, started)

    def _execute_as_leader(
        self,
        query: SpatialKeywordQuery,
        fingerprint: str,
        flight: _Inflight,
        started: float,
    ) -> Execution:
        try:
            result = self._engine.query(query)
        except BaseException as exc:
            with self._lock:
                if self._inflight.get(fingerprint) is flight:
                    del self._inflight[fingerprint]
            flight.error = exc
            flight.event.set()
            raise
        with self._lock:
            self._misses += 1
            # Only cache when no invalidation raced this execution: a
            # result computed against the old dataset must not survive.
            if self._capacity > 0 and flight.generation == self._generation:
                self._cache[fingerprint] = result
                self._cache.move_to_end(fingerprint)
                while len(self._cache) > self._capacity:
                    self._cache.popitem(last=False)
                    self._evictions += 1
            # A post-invalidation request may have replaced this flight
            # with a fresh-generation one; only deregister our own.
            if self._inflight.get(fingerprint) is flight:
                del self._inflight[fingerprint]
        flight.result = result
        flight.event.set()
        return Execution(
            query=query,
            result=result,
            response_ms=(time.perf_counter() - started) * 1000.0,
            source="engine",
            fingerprint=fingerprint,
        )

    def _wait_for_leader(
        self,
        query: SpatialKeywordQuery,
        fingerprint: str,
        flight: _Inflight,
        started: float,
    ) -> Execution:
        flight.event.wait()
        if flight.error is not None or flight.result is None:
            # The leader failed; this follower retries on its own rather
            # than reporting a failure it did not cause.
            return self.execute(query)
        with self._lock:
            self._inflight_waits += 1
        return Execution(
            query=query,
            result=flight.result,
            response_ms=(time.perf_counter() - started) * 1000.0,
            source="inflight",
            fingerprint=fingerprint,
        )

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def execute_batch(
        self, queries: Sequence[SpatialKeywordQuery]
    ) -> BatchExecution:
        """Fan a list of queries across the worker pool, order-preserving.

        Duplicates inside a batch flow through the same cache and
        in-flight dedup as everything else, so a batch of one popular
        query repeated a hundred times costs one index traversal.
        """
        started = time.perf_counter()
        if not queries:
            return BatchExecution(executions=(), total_ms=0.0)
        if self._pool is None or len(queries) == 1:
            executions = tuple(self.execute(query) for query in queries)
        else:
            executions = tuple(self._pool.map(self.execute, queries))
        return BatchExecution(
            executions=executions,
            total_ms=(time.perf_counter() - started) * 1000.0,
        )

    def close(self) -> None:
        """Shut down the worker pool (idempotent; the cache survives)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Cache management and introspection
    # ------------------------------------------------------------------
    def invalidate(self) -> int:
        """Drop every cached result (the dataset changed); returns count.

        Executions already in flight complete normally but are barred
        from (re)populating the cache.
        """
        with self._lock:
            dropped = len(self._cache)
            self._cache.clear()
            self._generation += 1
            self._invalidations += 1
            return dropped

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                inflight_waits=self._inflight_waits,
                size=len(self._cache),
                capacity=self._capacity,
            )

    def cached_fingerprints(self) -> tuple[str, ...]:
        """Cached keys in eviction order (least recently used first)."""
        with self._lock:
            return tuple(self._cache)

    def audit(self, query: SpatialKeywordQuery):
        """Execute (possibly from cache) and cross-check against the oracle.

        Extends :meth:`YaskEngine.audit`'s "are the returned objects
        really the best?" guarantee to the caching tier: a stale or
        corrupted cached result fails the audit exactly like a corrupted
        index would.  Returns the ``(execution, report)`` pair.
        """
        from repro.service.audit import audit_execution

        scorer = getattr(self._engine, "scorer", None)
        if scorer is None:
            raise TypeError(
                "executor.audit() requires an engine exposing a .scorer"
            )
        execution = self.execute(query)
        return execution, audit_execution(scorer, execution)
