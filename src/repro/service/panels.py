"""Text-mode rendering of the demonstration GUI panels (Figs. 3-5).

The paper's client visualises everything on Google Maps; offline, this
module renders the same information content as fixed-width text
(DESIGN.md, substitution 3):

* :func:`render_map` — Panel 1: the interactive map.  Grey markers
  (``.``) for all objects, green (``G``) for result objects, red (``Q``)
  for the query location and black (``M``) for the user's expected but
  missing objects, exactly the marker scheme of Section 4.
* :func:`render_result_window` — Panel 2's result window.
* :func:`render_explanation_panel` — Panel 4/Fig. 5's explanation panel,
  including the refinement options.
* :func:`render_query_details` — Panel 5: refined parameters, penalty
  and response time from the query log.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.geometry import Rect
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.query import QueryResult, SpatialKeywordQuery
from repro.service.session import LogEntry
from repro.whynot.engine import WhyNotAnswer
from repro.whynot.explanation import WhyNotExplanation

__all__ = [
    "render_map",
    "render_result_window",
    "render_explanation_panel",
    "render_query_details",
    "render_demo_screen",
]

_GREY, _GREEN, _QUERY, _MISSING = ".", "G", "Q", "M"


def _frame(title: str, body_lines: Sequence[str], width: int) -> str:
    """Draw a simple box with a title bar around ``body_lines``."""
    inner = max(width, len(title) + 2, *(len(line) for line in body_lines)) if body_lines else max(width, len(title) + 2)
    top = f"+-- {title} " + "-" * max(0, inner - len(title) - 3) + "+"
    framed = [top]
    for line in body_lines:
        framed.append(f"| {line.ljust(inner)} |")
    framed.append("+" + "-" * (inner + 2) + "+")
    return "\n".join(framed)


def render_map(
    database: SpatialDatabase,
    *,
    query: SpatialKeywordQuery | None = None,
    result: QueryResult | None = None,
    missing: Iterable[SpatialObject] = (),
    width: int = 60,
    height: int = 20,
) -> str:
    """Panel 1: the marker map over the database's dataspace."""
    if width < 10 or height < 5:
        raise ValueError("map must be at least 10x5 characters")
    space: Rect = database.dataspace
    grid = [[" " for _ in range(width)] for _ in range(height)]

    def plot(x: float, y: float, marker: str) -> None:
        if space.width <= 0 or space.height <= 0:
            col, row = 0, 0
        else:
            col = int((x - space.min_x) / space.width * (width - 1))
            row = int((space.max_y - y) / space.height * (height - 1))
        col = min(max(col, 0), width - 1)
        row = min(max(row, 0), height - 1)
        current = grid[row][col]
        # Priority: query > missing > result > grey.
        order = {" ": 0, _GREY: 1, _GREEN: 2, _MISSING: 3, _QUERY: 4}
        if order.get(marker, 0) >= order.get(current, 0):
            grid[row][col] = marker

    for obj in database:
        plot(obj.loc.x, obj.loc.y, _GREY)
    if result is not None:
        for entry in result:
            plot(entry.obj.loc.x, entry.obj.loc.y, _GREEN)
    for obj in missing:
        plot(obj.loc.x, obj.loc.y, _MISSING)
    if query is not None:
        plot(query.loc.x, query.loc.y, _QUERY)

    lines = ["".join(row) for row in grid]
    legend = (
        f"legend: {_QUERY}=query location  {_GREEN}=result  "
        f"{_MISSING}=missing  {_GREY}=object"
    )
    lines.append(legend)
    return _frame("Panel 1: map", lines, width)


def render_result_window(result: QueryResult, *, width: int = 60) -> str:
    """Panel 2's result window: the ranked result list."""
    lines = [result.query.describe(), ""]
    if not len(result):
        lines.append("(empty result)")
    for entry in result:
        lines.append(
            f"#{entry.rank} {entry.obj.label}  score={entry.score:.4f} "
            f"SDist={entry.sdist:.3f} TSim={entry.tsim:.3f}"
        )
    return _frame("Panel 2: results", lines, width)


def render_explanation_panel(
    explanation: WhyNotExplanation, *, width: int = 60
) -> str:
    """Panel 4 / Fig. 5: reasons for each missing object + model options."""
    lines: list[str] = []
    for obj_explanation in explanation.explanations:
        lines.extend(obj_explanation.narrative().splitlines())
        lines.append("")
    lines.append("Refinement options:")
    lines.append("  [1] adjust the distance/keyword preference weights")
    lines.append("  [2] adapt the query keywords")
    lines.append(f"Suggested first: {explanation.suggested_model}")
    return _frame("Panel 4: why-not explanation", lines, width)


def render_query_details(
    entries: Sequence[LogEntry], *, width: int = 60
) -> str:
    """Panel 5: query log with parameters, penalties and response times."""
    lines = [entry.describe() for entry in entries] or ["(no queries yet)"]
    return _frame("Panel 5: query log", lines, width)


def render_demo_screen(
    database: SpatialDatabase,
    result: QueryResult,
    answer: WhyNotAnswer | None = None,
    log_entries: Sequence[LogEntry] = (),
    *,
    width: int = 60,
) -> str:
    """Compose the full demo screen the examples print (Figs. 3-4)."""
    missing = (
        [expl.obj for expl in answer.explanation.explanations]
        if answer is not None
        else []
    )
    sections = [
        render_map(
            database,
            query=result.query,
            result=result,
            missing=missing,
            width=width,
        ),
        render_result_window(result, width=width),
    ]
    if answer is not None:
        sections.append(
            render_explanation_panel(answer.explanation, width=width)
        )
        lines = []
        if answer.preference is not None:
            lines.append("preference adjustment: " + answer.preference.describe())
        if answer.keyword is not None:
            lines.append("keyword adaption:      " + answer.keyword.describe())
        if answer.best_model is not None:
            lines.append(f"lower-penalty model:   {answer.best_model}")
        sections.append(_frame("Refined queries", lines, width))
    if log_entries:
        sections.append(render_query_details(log_entries, width=width))
    return "\n\n".join(sections)
