"""The browser-server service layer of Fig. 1.

* :class:`repro.service.api.YaskEngine` — the server-side query processor.
* :class:`repro.service.executor.QueryExecutor` — caching/deduplicating/
  batching execution tier shared by every transport.
* :class:`repro.service.executor.WhyNotExecutor` — the same tier for
  why-not answering (shared invalidation, top-k result reuse).
* :class:`repro.service.server.YaskHTTPServer` — JSON-over-HTTP transport.
* :class:`repro.service.client.YaskClient` — the client counterpart.
* :mod:`repro.service.session` — initial-query cache and query log.
* :mod:`repro.service.panels` — text rendering of the GUI panels (Figs. 3-5).
* :mod:`repro.service.wal` — durability: segmented write-ahead log,
  snapshots, crash recovery and read-only followers.
"""

from repro.service.api import TimedResult, YaskEngine
from repro.service.client import YaskClient, YaskClientError
from repro.service.executor import (
    BatchExecution,
    CacheStats,
    Execution,
    QueryExecutor,
    WhyNotBatchExecution,
    WhyNotExecution,
    WhyNotExecutor,
    WhyNotQuestion,
    consistent_stats,
    query_fingerprint,
    whynot_fingerprint,
)
from repro.service.sharded import ShardedEngine
from repro.service.panels import (
    render_demo_screen,
    render_explanation_panel,
    render_map,
    render_query_details,
    render_result_window,
)
from repro.service.protocol import ProtocolError
from repro.service.server import YaskHTTPServer, serve_forever
from repro.service.session import LogEntry, QueryLog, Session, SessionManager
from repro.service.wal import (
    FollowerEngine,
    FollowerLagError,
    RecoveryReport,
    WalCorruptionError,
    WalError,
    WalWriteError,
    WriteAheadLog,
    recover_engine,
)

__all__ = [
    "TimedResult",
    "YaskEngine",
    "YaskClient",
    "YaskClientError",
    "BatchExecution",
    "CacheStats",
    "Execution",
    "QueryExecutor",
    "WhyNotBatchExecution",
    "WhyNotExecution",
    "WhyNotExecutor",
    "WhyNotQuestion",
    "consistent_stats",
    "query_fingerprint",
    "whynot_fingerprint",
    "ShardedEngine",
    "render_demo_screen",
    "render_explanation_panel",
    "render_map",
    "render_query_details",
    "render_result_window",
    "ProtocolError",
    "YaskHTTPServer",
    "serve_forever",
    "LogEntry",
    "QueryLog",
    "Session",
    "SessionManager",
    "FollowerEngine",
    "FollowerLagError",
    "RecoveryReport",
    "WalCorruptionError",
    "WalError",
    "WalWriteError",
    "WriteAheadLog",
    "recover_engine",
]
