"""Scatter-gather top-k over spatially partitioned shards.

:class:`ShardedEngine` implements the :class:`~repro.core.topk.TopKEngine`
protocol (``search(query) -> QueryResult``) over a
:class:`~repro.core.sharding.ShardRouter`, so it slots under the
executor tier exactly where ``BestFirstTopK`` does — the caches,
sessions and transports are unchanged.

The gather is *bound-ordered and threshold-adaptive*:

1. Every shard's static score upper bound is computed (MBR MINDIST +
   keyword-union text bound, see :mod:`repro.core.sharding`), and
   shards are visited in descending bound order — the most promising
   shard first.
2. Each visited shard runs a columnar top-k scan over its own kernel
   (one score pass + a bounded ``nsmallest``); its candidates merge
   into the running global top-k under the oracle's
   ``(score desc, oid asc)`` order.
3. Once ``k`` candidates are held, any remaining shard whose upper
   bound is strictly below the current k-th score (minus the module's
   defensive ``hypot`` margin) is **skipped entirely** — it provably
   cannot place an object in the result, even by tie-break, which
   requires score equality.

With more than one worker the scatter instead fans the post-threshold
shard scans across a persistent thread pool: the best-bound shard is
scanned first to establish the threshold, survivors run concurrently,
and the merge is unchanged.  On a single-core host (the reference
container) the default is the sequential adaptive gather, whose wins
come from work elimination, not parallelism; the thread-pool path
exists for multicore deployments and is parity-tested either way.

Bit-for-bit parity with the unsharded oracle — same entries, same
scores/components, same tie order — is asserted by
``tests/properties/test_prop_sharding.py`` and the E12 benchmark.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from heapq import nsmallest
from itertools import chain
from operator import neg
from typing import Sequence

from repro import faults
from repro.core.query import QueryResult, RankedObject, SpatialKeywordQuery
from repro.core.scoring import Scorer
from repro.core.sharding import Shard, ShardRouter, _SKIP_MARGIN

__all__ = ["ShardedEngine"]


class ShardedEngine:
    """Scatter-gather spatial keyword top-k over a shard router.

    Parameters
    ----------
    router:
        The shard router (owns the shards and the scatter statistics).
    scorer:
        The engine's scorer — used to materialise the winning entries'
        score decompositions (identical floats to the scan, per the
        kernel parity contract).
    max_workers:
        Scatter pool width.  ``None`` (default) uses
        ``min(len(shards), cpu count)``; ``1`` selects the sequential
        threshold-adaptive gather.  Results are identical either way —
        only the wall-clock/pruning trade-off differs.
    worker_pool:
        A :class:`~repro.service.procpool.ShardWorkerPool`.  When set,
        shard scans dispatch to its worker *processes* instead of the
        thread pool — same scatter shape (best-bound first, prune,
        fan survivors), same results bit for bit, but the kernel loops
        run outside the parent's GIL.  The thread path stays available
        as the parity oracle.
    """

    def __init__(
        self,
        router: ShardRouter,
        scorer: Scorer,
        *,
        max_workers: int | None = None,
        worker_pool=None,
    ) -> None:
        if scorer.database is not router.database:
            raise ValueError("router and scorer must share the same database")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self._router = router
        self._scorer = scorer
        self._worker_pool = worker_pool
        workers = (
            max_workers
            if max_workers is not None
            else min(len(router), os.cpu_count() or 1)
        )
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="yask-shard"
            )
            if workers > 1 and worker_pool is None
            else None
        )

    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def scorer(self) -> Scorer:
        return self._scorer

    @property
    def stats(self):
        """The router's :class:`~repro.core.sharding.ShardStats`."""
        return self._router.stats

    @property
    def worker_pool(self):
        """The process worker pool, or ``None`` on the thread path."""
        return self._worker_pool

    def close(self) -> None:
        """Shut down the scatter pools (idempotent; the shards survive)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        if self._worker_pool is not None:
            self._worker_pool.close()

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    @staticmethod
    def _scan_shard(
        shard: Shard, query: SpatialKeywordQuery, k: int
    ) -> list[tuple[float, int]]:
        """The shard's best ``k`` candidates as ``(−score, oid)`` pairs.

        ``(−score, oid)`` ascending is exactly the oracle's
        ``(score desc, oid asc)`` order, so candidate lists from
        different shards merge with plain heap selection.
        """
        faults.trip(f"shard.scan.{shard.shard_id}")
        scores = shard.kernel._score_list(query)
        return nsmallest(k, zip(map(neg, scores), shard.kernel.oids))

    def _scan_one(
        self, shard: Shard, query: SpatialKeywordQuery, k: int
    ) -> list[tuple[float, int]]:
        """One shard's candidates via whichever scan tier is configured.

        The fault site trips in the *parent* either way, so seeded
        plans and deadline bookkeeping are process-transparent; the
        worker receives the prepared query scalars and runs the same
        ``scan_top_k`` the in-process path runs.
        """
        if self._worker_pool is None:
            return self._scan_shard(shard, query, k)
        faults.trip(f"shard.scan.{shard.shard_id}")
        return self._worker_pool.scan_one(
            shard, k, shard.kernel._query_scalars(query)
        )

    def search(self, query: SpatialKeywordQuery) -> QueryResult:
        """Exact top-k by scatter-gather with shard-bound skipping.

        Under an absorbing deadline scope
        (:func:`repro.faults.deadline_scope`) the gather degrades
        instead of hanging: shards past the deadline are skipped and
        failing shards are absorbed, each recorded on the scope's
        :class:`~repro.faults.Deadline` ledger so the serving tier can
        attach an honest ``degraded`` envelope to the partial result.
        Bound-pruned shards provably cannot contribute and count as
        answered — pruning is exactness, not degradation.
        """
        router = self._router
        stats = router.stats
        stats.bump("topk_searches")
        started = time.perf_counter()
        k = query.k

        bounds = router.score_upper_bounds(query)
        order = sorted(
            range(len(router)), key=bounds.__getitem__, reverse=True
        )
        shards = router.shards
        best: list[tuple[float, int]] = []
        scanned = 0
        skipped = 0

        scope = faults.current_scope()
        deadline = scope[0] if scope is not None and not scope[1] else None
        if deadline is not None:
            # Degradable sequential gather: deterministic visit order
            # (bound-descending), deadline checked between shard scans.
            for position, index in enumerate(order):
                if (
                    len(best) == k
                    and bounds[index] < -best[k - 1][0] - _SKIP_MARGIN
                ):
                    skipped += 1
                    deadline.note_answered()
                    continue
                if deadline.expired():
                    deadline.note_skipped(len(order) - position, "deadline")
                    break
                shard = shards[index]
                try:
                    piece = self._scan_one(shard, query, k)
                except Exception as exc:
                    deadline.note_failed(f"shard {shard.shard_id}: {exc}")
                    continue
                scanned += 1
                deadline.note_answered()
                best = nsmallest(k, chain(best, piece))
        elif self._worker_pool is not None:
            # Process scatter: same shape as the thread fan below (the
            # best-bound shard sets the threshold, survivors fan), so
            # scanned/skipped stats match the thread oracle exactly.
            first, rest = order[0], order[1:]
            scanned += 1
            best = self._scan_one(shards[first], query, k)
            requests = []
            for index in rest:
                if len(best) == k and bounds[index] < -best[k - 1][0] - _SKIP_MARGIN:
                    skipped += 1
                    continue
                shard = shards[index]
                faults.trip(f"shard.scan.{shard.shard_id}")
                requests.append(
                    (shard, k, shard.kernel._query_scalars(query))
                )
            scanned += len(requests)
            if requests:
                pieces = self._worker_pool.scan_many(requests)
                best = nsmallest(k, chain(best, *pieces.values()))
        elif self._pool is None or len(order) == 1:
            # Sequential adaptive gather: every scanned shard tightens
            # the threshold for the ones after it.
            for index in order:
                if len(best) == k and bounds[index] < -best[k - 1][0] - _SKIP_MARGIN:
                    skipped += 1
                    continue
                scanned += 1
                best = nsmallest(
                    k, chain(best, self._scan_shard(shards[index], query, k))
                )
        else:
            # Parallel scatter: the best-bound shard runs first to set
            # the threshold, survivors fan across the pool.
            first, rest = order[0], order[1:]
            scanned += 1
            best = self._scan_shard(shards[first], query, k)
            survivors = []
            for index in rest:
                if len(best) == k and bounds[index] < -best[k - 1][0] - _SKIP_MARGIN:
                    skipped += 1
                else:
                    survivors.append(index)
            scanned += len(survivors)
            if survivors:
                pieces = self._pool.map(
                    lambda index: self._scan_shard(shards[index], query, k),
                    survivors,
                )
                best = nsmallest(k, chain(best, *pieces))

        scatter_done = time.perf_counter()
        entries = self._materialise(query, best)
        finished = time.perf_counter()
        stats.bump("topk_shards_scanned", scanned)
        stats.bump("topk_shards_skipped", skipped)
        stats.bump("topk_scatter_ms", (scatter_done - started) * 1000.0)
        stats.bump("topk_merge_ms", (finished - scatter_done) * 1000.0)
        return QueryResult(query, entries)

    def _materialise(
        self,
        query: SpatialKeywordQuery,
        merged: Sequence[tuple[float, int]],
    ) -> list[RankedObject]:
        """Attach score decompositions to the merged winners.

        ``Scorer.breakdown`` is the set-path oracle; its floats equal
        the kernel scan's by the PR-3 parity contract, so the assembled
        entries are bit-identical to the unsharded engine's.
        """
        database = self._scorer.database
        entries: list[RankedObject] = []
        for position, (_negscore, oid) in enumerate(merged, start=1):
            obj = database.get(oid)
            breakdown = self._scorer.breakdown(obj, query)
            entries.append(
                RankedObject(
                    obj=obj,
                    score=breakdown.score,
                    sdist=breakdown.sdist,
                    tsim=breakdown.tsim,
                    rank=position,
                )
            )
        return entries
