"""Lock construction shim: named, levelled locks with opt-in sanitizing.

Every lock in the serving stack is created through this module instead
of bare ``threading.Lock()`` calls (yasklint rule YASK105 enforces this
for ``src/repro/service/``).  Each lock carries

* a **name** — a stable dotted identifier (``"executor.domain"``) used
  as the node key in the runtime lock-acquisition graph, and
* a **level** — its position in the documented lock-order hierarchy
  (see ``docs/DEVELOPMENT.md``).  A thread may only acquire a lock with
  a level *strictly greater* than every lock it already holds, so the
  hierarchy is deadlock-free by construction:

  ====== ==========================================================
  level  lock
  ====== ==========================================================
  10     ``server.snapshot`` — HTTP server snapshot-cadence lock
  15     ``wal.follower`` — follower replay lock
  20     ``engine.rw`` — the engine's reader/writer lock
  30     ``wal.log`` — WAL segment/manifest lock
  40     ``executor.domain`` — executor invalidation-domain lock
  50     leaf locks: result caches, stats counters, sessions
  ====== ==========================================================

* a **fsync-safe** flag — whether the write-ahead contract *requires*
  an ``fsync`` to happen while this lock is held.  The engine RW lock,
  the WAL lock and the snapshot-cadence lock are sanctioned (durability
  is the point of holding them); an fsync under any *other* lock is a
  latency hazard the sanitizer reports.

In normal operation (``YASK_LOCKDEP`` unset) every factory returns the
plain ``threading`` primitive — zero wrapping, zero overhead.  With
``YASK_LOCKDEP=1`` and the repo's ``tools/`` package importable, the
factories return instrumented locks that feed the runtime lock-order
sanitizer in :mod:`tools.analysis.lockdep`, which raises
``LockOrderError`` on level inversions, acquisition cycles, self
deadlocks and unsanctioned held-lock-across-fsync hazards.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from tools.analysis.lockdep import LockDepMonitor, LockSanitizer

LOCKDEP_ENV = "YASK_LOCKDEP"

# The documented lock-order hierarchy (low acquires high, never back).
LEVEL_SNAPSHOT = 10
LEVEL_FOLLOWER = 15
LEVEL_ENGINE = 20
LEVEL_WAL = 30
LEVEL_DOMAIN = 40
LEVEL_LEAF = 50

_warned_unavailable = False


def lockdep_enabled() -> bool:
    """``True`` when the ``YASK_LOCKDEP=1`` opt-in is set."""
    return os.environ.get(LOCKDEP_ENV, "") == "1"


def _monitor() -> Optional["LockDepMonitor"]:
    """The process-wide sanitizer, or ``None`` when instrumentation is off.

    ``tools`` is a repo-root package, not part of the installed
    ``repro`` distribution, so the import is lazy and failure is soft:
    enabling ``YASK_LOCKDEP`` outside a repo checkout degrades to plain
    locks with a one-time warning rather than breaking the service.
    """
    global _warned_unavailable
    if not lockdep_enabled():
        return None
    try:
        from tools.analysis.lockdep import global_monitor
    except ImportError:
        if not _warned_unavailable:
            _warned_unavailable = True
            warnings.warn(
                f"{LOCKDEP_ENV}=1 but tools.analysis.lockdep is not importable; "
                "lock-order sanitizing is disabled (run from a repo checkout)",
                RuntimeWarning,
                stacklevel=3,
            )
        return None
    return global_monitor()


def lockdep_active() -> bool:
    """``True`` when locks created *now* would be instrumented."""
    return _monitor() is not None


def ordered_lock(name: str, level: int, *, fsync_safe: bool = False) -> Any:
    """A mutex at ``level`` in the documented hierarchy.

    Returns a plain ``threading.Lock`` unless lockdep is active.
    """
    monitor = _monitor()
    if monitor is None:
        return threading.Lock()
    from tools.analysis.lockdep import InstrumentedLock

    return InstrumentedLock(monitor, name, level=level, fsync_safe=fsync_safe)


def ordered_rlock(name: str, level: int, *, fsync_safe: bool = False) -> Any:
    """A re-entrant mutex at ``level`` in the documented hierarchy."""
    monitor = _monitor()
    if monitor is None:
        return threading.RLock()
    from tools.analysis.lockdep import InstrumentedLock

    return InstrumentedLock(
        monitor, name, level=level, fsync_safe=fsync_safe, reentrant=True
    )


def lock_sanitizer(
    name: str, *, level: int | None = None, fsync_safe: bool = False
) -> Optional["LockSanitizer"]:
    """Manual acquire/release hooks for hand-rolled primitives.

    :class:`repro.core.mutations.ReadWriteLock` implements its own
    blocking protocol on a ``Condition``; it cannot be wrapped, so it
    reports acquisitions through this object instead.  ``None`` when
    instrumentation is off — callers keep a fast ``if san is None``
    path.
    """
    monitor = _monitor()
    if monitor is None:
        return None
    from tools.analysis.lockdep import LockSanitizer

    return LockSanitizer(monitor, name, level=level, fsync_safe=fsync_safe)


def note_fsync(context: str = "") -> None:
    """Record that the calling thread is about to ``fsync``.

    No-op unless lockdep is active; under the sanitizer it raises if
    the thread holds any lock that is not fsync-sanctioned.
    """
    monitor = _monitor()
    if monitor is not None:
        monitor.note_fsync(context)
