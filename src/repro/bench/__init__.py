"""Benchmark harness: timing helpers, tables and workload generators."""

from repro.bench.harness import Table, Timing, time_call
from repro.bench.workloads import (
    QueryWorkload,
    WhyNotScenario,
    generate_whynot_scenarios,
)

__all__ = [
    "Table",
    "Timing",
    "time_call",
    "QueryWorkload",
    "WhyNotScenario",
    "generate_whynot_scenarios",
]
