"""Workload generation for the benchmarks and stress tests.

Two generators:

* :class:`QueryWorkload` — random but realistic spatial keyword top-k
  queries over a database: locations sampled near the data distribution
  (users query where objects are), keywords sampled from the database
  vocabulary biased towards frequent keywords (users ask for common
  facilities), plus the ``k`` and weights sweeps the experiments need.

* :func:`generate_whynot_scenarios` — well-posed why-not questions: for
  a query, the missing objects are drawn from ranks inside
  ``(k, k + rank_window]`` of the exact ranking, mirroring the paper's
  user who expects a *nearly*-returned object ("the Starbucks cafe down
  the street"), not an arbitrary bottom-ranked one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.geometry import Point
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.query import DEFAULT_WEIGHTS, SpatialKeywordQuery, Weights
from repro.core.scoring import Scorer

__all__ = ["QueryWorkload", "WhyNotScenario", "generate_whynot_scenarios"]


class QueryWorkload:
    """Seeded generator of spatial keyword top-k queries."""

    def __init__(
        self,
        database: SpatialDatabase,
        *,
        seed: int = 123,
        k: int = 10,
        keywords_per_query: tuple[int, int] = (1, 3),
        weights: Weights = DEFAULT_WEIGHTS,
        location_jitter: float = 0.02,
        keyword_bias: str = "frequency",
    ) -> None:
        """
        ``keyword_bias`` selects how query keywords are drawn:
        ``"frequency"`` (document-frequency proportional — common
        facilities are queried more often, like real query logs) or
        ``"uniform"`` (every vocabulary keyword equally likely — rare
        keywords appear often, the favourable regime for set-bound
        pruning; E3 benchmarks both).
        """
        min_kw, max_kw = keywords_per_query
        if not (1 <= min_kw <= max_kw):
            raise ValueError(f"invalid keywords_per_query range {keywords_per_query}")
        if keyword_bias not in ("frequency", "uniform"):
            raise ValueError(f"unknown keyword_bias {keyword_bias!r}")
        self._database = database
        self._rng = random.Random(seed)
        self._k = k
        self._kw_range = (min_kw, max_kw)
        self._weights = weights
        self._jitter = location_jitter
        frequencies = database.keyword_document_frequencies()
        self._keywords = sorted(frequencies)
        if keyword_bias == "uniform":
            weights_list = [1.0] * len(self._keywords)
        else:
            weights_list = [float(frequencies[kw]) for kw in self._keywords]
        total = sum(weights_list)
        self._cumulative: list[float] = []
        running = 0.0
        for weight in weights_list:
            running += weight / total
            self._cumulative.append(running)

    def _sample_keyword(self) -> str:
        needle = self._rng.random()
        low, high = 0, len(self._cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if self._cumulative[mid] < needle:
                low = mid + 1
            else:
                high = mid
        return self._keywords[low]

    def _sample_location(self) -> Point:
        anchor = self._database.objects[
            self._rng.randrange(len(self._database))
        ].loc
        space = self._database.dataspace
        dx = self._rng.gauss(0.0, self._jitter * max(space.width, 1e-12))
        dy = self._rng.gauss(0.0, self._jitter * max(space.height, 1e-12))
        return Point(
            min(max(anchor.x + dx, space.min_x), space.max_x),
            min(max(anchor.y + dy, space.min_y), space.max_y),
        )

    def next_query(self, *, k: int | None = None) -> SpatialKeywordQuery:
        """Generate the next query of the workload."""
        count = self._rng.randint(*self._kw_range)
        keywords: set[str] = set()
        attempts = 0
        while len(keywords) < count and attempts < count * 20:
            keywords.add(self._sample_keyword())
            attempts += 1
        return SpatialKeywordQuery(
            loc=self._sample_location(),
            doc=frozenset(keywords),
            k=k if k is not None else self._k,
            weights=self._weights,
        )

    def queries(self, count: int, *, k: int | None = None) -> Iterator[SpatialKeywordQuery]:
        for _ in range(count):
            yield self.next_query(k=k)


@dataclass(frozen=True, slots=True)
class WhyNotScenario:
    """A well-posed why-not question: query + genuinely missing objects."""

    query: SpatialKeywordQuery
    missing: tuple[SpatialObject, ...]
    #: Exact ranks of the missing objects under the query (diagnostics).
    missing_ranks: tuple[int, ...]

    @property
    def worst_rank(self) -> int:
        return max(self.missing_ranks)


def generate_whynot_scenarios(
    scorer: Scorer,
    *,
    count: int,
    k: int = 10,
    missing_count: int = 1,
    rank_window: int = 40,
    seed: int = 321,
    keywords_per_query: tuple[int, int] = (2, 3),
    weights: Weights = DEFAULT_WEIGHTS,
) -> list[WhyNotScenario]:
    """Generate ``count`` scenarios whose missing objects rank just outside k.

    Queries that cannot produce ``missing_count`` objects in the rank
    window (e.g. too few keyword matches) are skipped and regenerated;
    generation fails loudly rather than silently under-delivering.
    """
    workload = QueryWorkload(
        scorer.database,
        seed=seed,
        k=k,
        keywords_per_query=keywords_per_query,
        weights=weights,
    )
    rng = random.Random(seed + 1)
    scenarios: list[WhyNotScenario] = []
    attempts = 0
    max_attempts = count * 50
    while len(scenarios) < count:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not generate {count} why-not scenarios in "
                f"{max_attempts} attempts (k={k}, window={rank_window})"
            )
        query = workload.next_query()
        ranking = scorer.rank_all(query)
        window = [
            entry
            for entry in ranking[k : k + rank_window]
            # Objects with zero textual similarity and far away make
            # degenerate "missing" objects nobody would expect; require
            # at least one matching keyword, like the paper's scenarios.
            if entry.tsim > 0.0
        ]
        if len(window) < missing_count:
            continue
        chosen = rng.sample(window, missing_count)
        scenarios.append(
            WhyNotScenario(
                query=query,
                missing=tuple(entry.obj for entry in chosen),
                missing_ranks=tuple(entry.rank for entry in chosen),
            )
        )
    return scenarios
