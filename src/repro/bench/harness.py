"""Experiment harness: timing, aggregation and table rendering.

The benchmark modules under ``benchmarks/`` use these helpers to print
the rows each experiment of EXPERIMENTS.md reports — aligned text tables
comparable against the paper's demonstration claims — independent of
pytest-benchmark's own statistics output.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

__all__ = ["Timing", "time_call", "Table"]


@dataclass(frozen=True, slots=True)
class Timing:
    """Wall-clock statistics of repeated calls (seconds)."""

    best: float
    median: float
    mean: float
    repeats: int

    @property
    def best_ms(self) -> float:
        return self.best * 1000.0

    @property
    def median_ms(self) -> float:
        return self.median * 1000.0


def time_call(
    fn: Callable[[], Any], *, repeat: int = 5, warmup: int = 1
) -> tuple[Any, Timing]:
    """Call ``fn`` repeatedly, returning its result and timing stats.

    ``warmup`` calls are executed first and discarded (cache effects);
    the returned value comes from the final timed call.
    """
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    result: Any = None
    for _ in range(warmup):
        result = fn()
    samples: list[float] = []
    for _ in range(repeat):
        started = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - started)
    return result, Timing(
        best=min(samples),
        median=statistics.median(samples),
        mean=statistics.fmean(samples),
        repeats=repeat,
    )


class Table:
    """A fixed-column text table with typed formatting.

    >>> table = Table("n", "engine", "ms")
    >>> table.add_row(1000, "setr", 0.52)
    >>> print(table.render())  # doctest: +SKIP
    """

    def __init__(self, *columns: str, title: str | None = None) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self._columns = columns
        self._rows: list[tuple[str, ...]] = []
        self._title = title

    @property
    def columns(self) -> tuple[str, ...]:
        return self._columns

    @property
    def rows(self) -> list[tuple[str, ...]]:
        return list(self._rows)

    @staticmethod
    def _format(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.001:
                return f"{value:.3e}"
            return f"{value:.4f}".rstrip("0").rstrip(".")
        return str(value)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self._columns):
            raise ValueError(
                f"expected {len(self._columns)} values, got {len(values)}"
            )
        self._rows.append(tuple(self._format(value) for value in values))

    def render(self) -> str:
        widths = [len(column) for column in self._columns]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines: list[str] = []
        if self._title:
            lines.append(self._title)
        header = "  ".join(
            column.ljust(widths[index])
            for index, column in enumerate(self._columns)
        )
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in self._rows:
            lines.append(
                "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
            )
        return "\n".join(lines)

    def print(self) -> None:
        """Print with a leading newline so pytest -s output stays readable."""
        print("\n" + self.render())
