"""Dataset persistence: JSON and CSV round-tripping.

The demonstration server loads its hotel crawl from disk (Fig. 1 shows
the R-tree index sitting on top of the hard disk); these loaders are the
equivalent ingestion path.  JSON preserves the full object model; CSV is
provided for interoperability with spreadsheet-style POI exports
(keywords joined by ``|`` in a single column).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.core.geometry import Point, Rect
from repro.core.objects import SpatialDatabase, SpatialObject

__all__ = [
    "database_to_dict",
    "database_from_dict",
    "save_json",
    "load_json",
    "save_csv",
    "load_csv",
]


def database_to_dict(database: SpatialDatabase) -> dict:
    """Serialise a database (objects + dataspace) to plain data."""
    return {
        "dataspace": list(database.dataspace.as_tuple()),
        "objects": [
            {
                "oid": obj.oid,
                "x": obj.loc.x,
                "y": obj.loc.y,
                "keywords": sorted(obj.doc),
                "name": obj.name,
            }
            for obj in database
        ],
    }


def database_from_dict(payload: dict) -> SpatialDatabase:
    """Inverse of :func:`database_to_dict`."""
    try:
        raw_objects = payload["objects"]
    except (KeyError, TypeError):
        raise ValueError("payload must be a dict with an 'objects' list") from None
    objects = [
        SpatialObject(
            oid=int(raw["oid"]),
            loc=Point(float(raw["x"]), float(raw["y"])),
            doc=frozenset(raw["keywords"]),
            name=raw.get("name"),
        )
        for raw in raw_objects
    ]
    dataspace = None
    if payload.get("dataspace") is not None:
        min_x, min_y, max_x, max_y = payload["dataspace"]
        dataspace = Rect(min_x, min_y, max_x, max_y)
    return SpatialDatabase(objects, dataspace=dataspace)


def save_json(database: SpatialDatabase, path: str | Path) -> None:
    """Write a database to a JSON file."""
    Path(path).write_text(
        json.dumps(database_to_dict(database), indent=2), encoding="utf-8"
    )


def load_json(path: str | Path) -> SpatialDatabase:
    """Read a database from a JSON file written by :func:`save_json`."""
    return database_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


_CSV_FIELDS = ("oid", "x", "y", "keywords", "name")


def save_csv(database: SpatialDatabase, path: str | Path) -> None:
    """Write a database to CSV (keywords ``|``-joined; no dataspace).

    Loading a CSV therefore recomputes the dataspace as the MBR of the
    points — acceptable for interchange, lossy for exact score
    reproduction when the original dataspace was larger.
    """
    with Path(path).open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for obj in database:
            writer.writerow(
                {
                    "oid": obj.oid,
                    "x": repr(obj.loc.x),
                    "y": repr(obj.loc.y),
                    "keywords": "|".join(sorted(obj.doc)),
                    "name": obj.name or "",
                }
            )


def load_csv(path: str | Path) -> SpatialDatabase:
    """Read a database from a CSV file written by :func:`save_csv`."""
    objects: list[SpatialObject] = []
    with Path(path).open(newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            keywords = [kw for kw in row["keywords"].split("|") if kw]
            objects.append(
                SpatialObject(
                    oid=int(row["oid"]),
                    loc=Point(float(row["x"]), float(row["y"])),
                    doc=frozenset(keywords),
                    name=row["name"] or None,
                )
            )
    return SpatialDatabase(objects)
