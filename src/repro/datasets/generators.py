"""Synthetic spatial-keyword dataset generation.

The paper demonstrates YASK on a real crawl but its engines are
evaluated (and stress-tested here) on parameterised synthetic data: the
generators control cardinality, the spatial distribution (uniform or
Gaussian clusters — real POI data is heavily clustered), vocabulary size
and the Zipf skew of keyword frequencies (real keyword distributions are
Zipfian: a few facilities like "wifi" are everywhere, most keywords are
rare).

Everything is driven by a seeded :class:`random.Random` so datasets are
reproducible down to the object level, which the benchmark harness
relies on for comparable runs.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.geometry import Point, Rect
from repro.core.objects import SpatialDatabase, SpatialObject

__all__ = [
    "zipf_weights",
    "generate_vocabulary",
    "SyntheticDatasetBuilder",
]

#: The unit square: the default dataspace of synthetic datasets.
UNIT_SPACE = Rect(0.0, 0.0, 1.0, 1.0)


def zipf_weights(size: int, exponent: float = 1.0) -> list[float]:
    """Zipf probability weights: ``p(i) ∝ 1 / (i+1)^exponent``.

    ``exponent = 0`` degenerates to the uniform distribution, which the
    generator tests use to check the sampling plumbing independently of
    the skew.
    """
    if size < 1:
        raise ValueError("size must be at least 1")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    raw = [1.0 / (rank + 1) ** exponent for rank in range(size)]
    total = sum(raw)
    return [weight / total for weight in raw]


def generate_vocabulary(size: int, *, prefix: str = "kw") -> list[str]:
    """A deterministic synthetic vocabulary ``kw000, kw001, ...``."""
    if size < 1:
        raise ValueError("size must be at least 1")
    width = max(3, len(str(size - 1)))
    return [f"{prefix}{index:0{width}d}" for index in range(size)]


@dataclass(slots=True)
class _WeightedSampler:
    """Sampling without replacement from a fixed weighted vocabulary."""

    items: Sequence[str]
    cumulative: list[float]

    @classmethod
    def build(cls, items: Sequence[str], weights: Sequence[float]) -> "_WeightedSampler":
        if len(items) != len(weights):
            raise ValueError("items and weights must have equal length")
        cumulative: list[float] = []
        running = 0.0
        for weight in weights:
            running += weight
            cumulative.append(running)
        return cls(items=items, cumulative=cumulative)

    def sample_distinct(self, count: int, rng: random.Random) -> frozenset[str]:
        """Draw ``count`` distinct items (rejection sampling on duplicates)."""
        if count > len(self.items):
            raise ValueError(
                f"cannot draw {count} distinct items from {len(self.items)}"
            )
        chosen: set[str] = set()
        total = self.cumulative[-1]
        # Rejection sampling is fast while count ≪ vocabulary; fall back
        # to an explicit shuffle when the draw is a large fraction.
        if count * 3 >= len(self.items):
            pool = list(self.items)
            rng.shuffle(pool)
            return frozenset(pool[:count])
        while len(chosen) < count:
            needle = rng.random() * total
            index = bisect_right(self.cumulative, needle)
            index = min(index, len(self.items) - 1)
            chosen.add(self.items[index])
        return frozenset(chosen)


class SyntheticDatasetBuilder:
    """Reproducible builder of synthetic spatial keyword databases."""

    def __init__(self, seed: int = 42) -> None:
        self._seed = seed

    @property
    def seed(self) -> int:
        return self._seed

    def build(
        self,
        n: int,
        *,
        vocabulary_size: int = 200,
        doc_length: tuple[int, int] = (4, 10),
        spatial: str = "uniform",
        clusters: int = 8,
        cluster_spread: float = 0.05,
        zipf_exponent: float = 1.0,
        dataspace: Rect = UNIT_SPACE,
        name_objects: bool = False,
    ) -> SpatialDatabase:
        """Generate a database of ``n`` objects.

        Parameters
        ----------
        spatial:
            ``"uniform"`` spreads locations uniformly over the dataspace;
            ``"clustered"`` draws them from ``clusters`` Gaussian blobs
            with standard deviation ``cluster_spread`` (in dataspace
            units), clipped to the dataspace.
        doc_length:
            Inclusive (min, max) keyword-set size per object.
        zipf_exponent:
            Skew of the keyword frequency distribution.
        """
        if n < 1:
            raise ValueError("n must be at least 1")
        min_len, max_len = doc_length
        if not (1 <= min_len <= max_len):
            raise ValueError(f"invalid doc_length range {doc_length}")
        if max_len > vocabulary_size:
            raise ValueError("doc_length max cannot exceed vocabulary size")
        if spatial not in ("uniform", "clustered"):
            raise ValueError(f"unknown spatial distribution {spatial!r}")

        rng = random.Random(self._seed)
        vocabulary = generate_vocabulary(vocabulary_size)
        sampler = _WeightedSampler.build(
            vocabulary, zipf_weights(vocabulary_size, zipf_exponent)
        )

        centers: list[Point] = []
        if spatial == "clustered":
            if clusters < 1:
                raise ValueError("clusters must be at least 1")
            centers = [
                Point(
                    rng.uniform(dataspace.min_x, dataspace.max_x),
                    rng.uniform(dataspace.min_y, dataspace.max_y),
                )
                for _ in range(clusters)
            ]

        objects: list[SpatialObject] = []
        for oid in range(n):
            if spatial == "uniform":
                loc = Point(
                    rng.uniform(dataspace.min_x, dataspace.max_x),
                    rng.uniform(dataspace.min_y, dataspace.max_y),
                )
            else:
                center = centers[rng.randrange(len(centers))]
                loc = Point(
                    self._clip(
                        rng.gauss(center.x, cluster_spread * dataspace.width),
                        dataspace.min_x,
                        dataspace.max_x,
                    ),
                    self._clip(
                        rng.gauss(center.y, cluster_spread * dataspace.height),
                        dataspace.min_y,
                        dataspace.max_y,
                    ),
                )
            doc = sampler.sample_distinct(rng.randint(min_len, max_len), rng)
            objects.append(
                SpatialObject(
                    oid=oid,
                    loc=loc,
                    doc=doc,
                    name=f"object-{oid}" if name_objects else None,
                )
            )
        return SpatialDatabase(objects, dataspace=dataspace)

    @staticmethod
    def _clip(value: float, low: float, high: float) -> float:
        return min(max(value, low), high)
