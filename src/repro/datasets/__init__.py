"""Datasets: the Hong Kong demonstration data and synthetic generators."""

from repro.datasets.generators import (
    SyntheticDatasetBuilder,
    generate_vocabulary,
    zipf_weights,
)
from repro.datasets.hotels import (
    GRAND_VICTORIA,
    HONG_KONG_BOUNDS,
    HOTEL_COUNT,
    STARBUCKS_CENTRAL,
    coffee_shops,
    hong_kong_hotels,
)
from repro.datasets.loaders import (
    database_from_dict,
    database_to_dict,
    load_csv,
    load_json,
    save_csv,
    save_json,
)

__all__ = [
    "SyntheticDatasetBuilder",
    "generate_vocabulary",
    "zipf_weights",
    "GRAND_VICTORIA",
    "HONG_KONG_BOUNDS",
    "HOTEL_COUNT",
    "STARBUCKS_CENTRAL",
    "coffee_shops",
    "hong_kong_hotels",
    "database_from_dict",
    "database_to_dict",
    "load_csv",
    "load_json",
    "save_csv",
    "save_json",
]
