"""The demonstration datasets.

Section 4 of the paper: "we use a small and focussed data set containing
hotels in Hong Kong for demonstrating the system.  The data set is
crawled from booking.com and contains some 539 hotels.  The keyword set
for each hotel is extracted from the facilities and user comments
relating to the hotel."

The crawl itself is proprietary, so this module synthesises an
equivalent dataset (DESIGN.md, substitution 1): exactly 539 hotels
placed in the real Hong Kong bounding box, clustered around the city's
actual hotel districts, with keyword sets drawn from a facilities +
comment-adjective vocabulary under a Zipf-like popularity skew.  Names,
tiers and keyword statistics are deterministic functions of the seed so
every example, test and benchmark sees the same city.

The module also ships :func:`coffee_shops`, a small downtown dataset
staging Example 1 of the paper (Bob, the top-3 "coffee" query and the
missing Starbucks), and guarantees the presence of hotels staging
Example 2 (Carol's well-known international hotel described by "luxury"
rather than "clean"/"comfortable").
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.geometry import Point, Rect
from repro.core.objects import SpatialDatabase, SpatialObject

__all__ = [
    "HONG_KONG_BOUNDS",
    "HOTEL_COUNT",
    "hong_kong_hotels",
    "coffee_shops",
    "GRAND_VICTORIA",
    "STARBUCKS_CENTRAL",
]

#: Longitude/latitude bounding box of Hong Kong (the demo's map extent).
HONG_KONG_BOUNDS = Rect(113.85, 22.15, 114.41, 22.56)

#: "contains some 539 hotels" (Section 4).
HOTEL_COUNT = 539

#: Name of the staged "well-known international hotel" of Example 2.
GRAND_VICTORIA = "Grand Victoria Harbour Hotel"

#: Name of the staged missing cafe of Example 1.
STARBUCKS_CENTRAL = "Starbucks Central"

#: Hotel districts: (name, lon, lat, spread, share of hotels).
_DISTRICTS: Sequence[tuple[str, float, float, float, float]] = (
    ("Central", 114.158, 22.282, 0.008, 0.16),
    ("Wan Chai", 114.173, 22.277, 0.007, 0.13),
    ("Causeway Bay", 114.185, 22.280, 0.006, 0.13),
    ("Tsim Sha Tsui", 114.172, 22.298, 0.007, 0.18),
    ("Jordan", 114.171, 22.305, 0.006, 0.10),
    ("Mong Kok", 114.169, 22.319, 0.007, 0.12),
    ("North Point", 114.200, 22.291, 0.008, 0.07),
    ("Hung Hom", 114.182, 22.306, 0.008, 0.06),
    ("Tung Chung", 113.941, 22.289, 0.010, 0.05),
)

#: Facility keywords ordered by popularity (Zipf-like head first).
_FACILITIES: Sequence[str] = (
    "wifi", "aircon", "elevator", "restaurant", "laundry", "bar",
    "gym", "breakfast", "parking", "concierge", "spa", "pool",
    "harbourview", "shuttle", "kitchenette", "balcony", "rooftop",
    "petfriendly", "sauna", "businesscenter",
)

#: Comment adjectives by hotel tier (extracted "from user comments").
_TIER_ADJECTIVES: dict[str, Sequence[str]] = {
    "luxury": ("luxury", "elegant", "spacious", "stylish", "grand"),
    "business": ("modern", "clean", "comfortable", "convenient", "central"),
    "boutique": ("cozy", "charming", "quiet", "stylish", "clean"),
    "budget": ("cheap", "basic", "compact", "clean", "friendly"),
}

_TIER_SHARES: Sequence[tuple[str, float]] = (
    ("luxury", 0.12),
    ("business", 0.34),
    ("boutique", 0.24),
    ("budget", 0.30),
)

_NAME_PREFIXES: Sequence[str] = (
    "Harbour", "Victoria", "Dragon", "Pearl", "Jade", "Golden", "Lucky",
    "Royal", "Imperial", "Pacific", "Oriental", "Island", "Garden",
    "Metro", "City", "Star", "Lotus", "Phoenix", "Bauhinia", "Kowloon",
)

_NAME_SUFFIXES: dict[str, Sequence[str]] = {
    "luxury": ("Grand Hotel", "Palace", "Regency", "Hotel & Towers"),
    "business": ("Hotel", "Plaza", "Gateway", "Hotel Central"),
    "boutique": ("Boutique Hotel", "House", "Residence", "Lodge"),
    "budget": ("Inn", "Guesthouse", "Hostel", "Budget Hotel"),
}


def _pick_tier(rng: random.Random) -> str:
    needle = rng.random()
    running = 0.0
    for tier, share in _TIER_SHARES:
        running += share
        if needle <= running:
            return tier
    return _TIER_SHARES[-1][0]


def _pick_district(rng: random.Random) -> tuple[str, float, float, float]:
    needle = rng.random()
    running = 0.0
    for name, lon, lat, spread, share in _DISTRICTS:
        running += share
        if needle <= running:
            return name, lon, lat, spread
    name, lon, lat, spread, _ = _DISTRICTS[-1]
    return name, lon, lat, spread


def _facility_sample(rng: random.Random, count: int) -> set[str]:
    """Draw ``count`` distinct facilities with popularity-rank skew."""
    chosen: set[str] = set()
    while len(chosen) < count:
        # Squaring the uniform variate biases draws towards the head of
        # the popularity-ordered facility list (Zipf-like behaviour).
        index = int((rng.random() ** 2) * len(_FACILITIES))
        chosen.add(_FACILITIES[min(index, len(_FACILITIES) - 1)])
    return chosen


def _clip(value: float, low: float, high: float) -> float:
    return min(max(value, low), high)


def _staged_hotels(start_oid: int) -> list[SpatialObject]:
    """Hand-placed hotels that stage Example 2 deterministically.

    ``GRAND_VICTORIA`` sits a short walk from the Tsim Sha Tsui "conference
    venue" used by the Carol example but is described by "luxury"
    vocabulary — not the "clean"/"comfortable" wording of her query — so
    it misses the result for textual reasons, which keyword adaption
    fixes (the scenario of Example 2 and reference [6]).
    """
    staged = [
        SpatialObject(
            oid=start_oid,
            loc=Point(114.1712, 22.2965),
            doc=frozenset(
                {
                    "luxury", "elegant", "grand", "harbourview", "spa",
                    "pool", "concierge", "restaurant", "bar", "wifi",
                }
            ),
            name=GRAND_VICTORIA,
        ),
        SpatialObject(
            oid=start_oid + 1,
            loc=Point(114.1745, 22.2992),
            doc=frozenset(
                {"clean", "comfortable", "modern", "wifi", "breakfast", "central"}
            ),
            name="Salisbury Business Hotel",
        ),
        SpatialObject(
            oid=start_oid + 2,
            loc=Point(114.1698, 22.2978),
            doc=frozenset(
                {"clean", "comfortable", "compact", "wifi", "aircon", "friendly"}
            ),
            name="Kimberley Budget Inn",
        ),
        SpatialObject(
            oid=start_oid + 3,
            loc=Point(114.1728, 22.2959),
            doc=frozenset(
                {"clean", "comfortable", "convenient", "elevator", "laundry", "wifi"}
            ),
            name="Granville House",
        ),
    ]
    return staged


def hong_kong_hotels(seed: int = 2016) -> SpatialDatabase:
    """Build the 539-hotel Hong Kong demonstration database.

    Deterministic in ``seed``; the default reproduces the dataset used
    throughout the examples, tests and benchmarks.  Four of the 539
    hotels are hand-staged for Example 2 (see :func:`_staged_hotels`);
    the rest are synthesised per district/tier.
    """
    rng = random.Random(seed)
    staged = _staged_hotels(0)
    hotels: list[SpatialObject] = list(staged)
    used_names = {hotel.name for hotel in staged}

    oid = len(staged)
    while len(hotels) < HOTEL_COUNT:
        district, lon, lat, spread = _pick_district(rng)
        tier = _pick_tier(rng)

        prefix = rng.choice(_NAME_PREFIXES)
        suffix = rng.choice(_NAME_SUFFIXES[tier])
        name = f"{prefix} {suffix}"
        if name in used_names:
            name = f"{name} {district}"
        if name in used_names:
            name = f"{name} {oid}"
        used_names.add(name)

        loc = Point(
            _clip(rng.gauss(lon, spread), HONG_KONG_BOUNDS.min_x, HONG_KONG_BOUNDS.max_x),
            _clip(rng.gauss(lat, spread), HONG_KONG_BOUNDS.min_y, HONG_KONG_BOUNDS.max_y),
        )

        facility_count = {
            "luxury": rng.randint(6, 9),
            "business": rng.randint(4, 7),
            "boutique": rng.randint(3, 6),
            "budget": rng.randint(2, 4),
        }[tier]
        doc = _facility_sample(rng, facility_count)
        adjectives = _TIER_ADJECTIVES[tier]
        doc.update(rng.sample(adjectives, k=rng.randint(2, 3)))

        hotels.append(SpatialObject(oid=oid, loc=loc, doc=frozenset(doc), name=name))
        oid += 1

    return SpatialDatabase(hotels, dataspace=HONG_KONG_BOUNDS)


def coffee_shops(seed: int = 7) -> SpatialDatabase:
    """A downtown cafe dataset staging Example 1 (Bob and the Starbucks).

    ``STARBUCKS_CENTRAL`` is the closest cafe to the canonical query
    point ``(114.158, 22.282)`` but carries a broad keyword set, so its
    Jaccard similarity to the single query keyword "coffee" is diluted;
    under a text-heavy preference it drops out of the top 3 and only a
    preference adjustment towards spatial proximity revives it — the
    scenario of Example 1 and reference [5].
    """
    rng = random.Random(seed)
    center = Point(114.158, 22.282)
    bounds = Rect(114.10, 22.24, 114.22, 22.33)

    shops: list[SpatialObject] = [
        SpatialObject(
            oid=0,
            loc=Point(114.1583, 22.2823),
            doc=frozenset(
                {"coffee", "espresso", "wifi", "takeaway", "pastry", "breakfast"}
            ),
            name=STARBUCKS_CENTRAL,
        )
    ]
    pure_docs = (
        frozenset({"coffee"}),
        frozenset({"coffee", "espresso"}),
        frozenset({"coffee", "tea"}),
    )
    generic_names = (
        "Kopi House", "Bean Scene", "Cafe Aroma", "Brew Lab", "Mocha Corner",
        "Cha Chaan Teng", "Latte Story", "Drip Room", "Roast Works", "Cup & Co",
    )
    for oid in range(1, 60):
        loc = Point(
            _clip(rng.gauss(center.x, 0.015), bounds.min_x, bounds.max_x),
            _clip(rng.gauss(center.y, 0.015), bounds.min_y, bounds.max_y),
        )
        if rng.random() < 0.5:
            doc = rng.choice(pure_docs)
        else:
            extras = rng.sample(
                ["wifi", "cake", "sandwich", "juice", "brunch", "books", "music"],
                k=rng.randint(2, 4),
            )
            doc = frozenset({"coffee", *extras})
        name = f"{rng.choice(generic_names)} {oid}"
        shops.append(SpatialObject(oid=oid, loc=loc, doc=doc, name=name))
    return SpatialDatabase(shops, dataspace=bounds)
