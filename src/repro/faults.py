"""Deterministic fault injection and request deadlines.

The graceful-degradation tier's substrate: every failure-path test in
``tests/chaos/`` drives the *production* code through the hooks in this
module instead of monkeypatching internals, and every degradation
decision in the serving stack (shard skips, partial top-k envelopes,
circuit-breaker cooldowns) reads time through :func:`now` so seeded
fault plans reproduce byte-for-byte.

Two cooperating halves:

**Fault plans.**  A :class:`FaultPlan` is a seeded, declarative list of
rules — *delay*, *raise*, *short-write* or *torn-write* at named
injection points ("sites") such as ``"wal.sync"``, ``"shard.scan.2"``
or ``"follower.poll"``.  Production code calls :func:`trip` at each
site; when no plan is armed the call is a single global ``None`` check
(zero overhead), and when one is armed via :func:`armed` the plan's
matching rule fires deterministically.  File-level faults ride on the
same mechanism through :func:`guarded_opener`, which the write-ahead
log threads through all of its file I/O: while a plan is armed, opened
handles are wrapped so ``write``/``sync``/``read``/``truncate`` become
injection sites too (including partial "short" writes and "torn" writes
whose rollback truncate also fails — the crash shapes the WAL's
recovery scan must absorb).

**Virtual time.**  An armed plan carries a frozen virtual clock:
*delay* rules advance it instead of sleeping, and :func:`now` returns
the plan's clock while armed (``time.monotonic()`` otherwise).  A
:class:`Deadline` built on :func:`now` therefore expires exactly when a
seeded delay says it does — chaos tests never wall-clock-sleep, and the
same seed yields the same degraded envelope every run.

Deadlines are propagated *ambiently*: the executor arms a
thread-local scope around the engine compute (:func:`deadline_scope`
for the absorbing top-k path, :func:`strict_deadline_scope` for rank
arithmetic that must complete exactly or abort), and the scatter /
rank-scan loops poll :func:`current_deadline`.  The why-not pipeline
runs strict: a partial *rank count* would be a silently-wrong answer,
so expiry raises :class:`DeadlineExceeded` instead of degrading.

This module also hosts the imperative :class:`FlakyFile` /
:class:`FlakyOpener` pair (grown out of the old
``tests/service/flaky_io.py`` helper): countdown-style one-shot faults
for unit tests that want a specific failure *now* without building a
plan.
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Any, Callable, Iterator

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "FaultPlan",
    "FlakyFile",
    "FlakyOpener",
    "armed",
    "active_plan",
    "current_deadline",
    "deadline_scope",
    "guarded_opener",
    "now",
    "shielded",
    "strict_deadline_scope",
    "trip",
]


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
_DELAY = "delay"
_RAISE = "raise"
_SHORT_WRITE = "short-write"
_TORN_WRITE = "torn-write"


@dataclass
class _Rule:
    """One declarative injection: where, what, and how many times."""

    site: str  # fnmatch pattern over site names
    action: str  # _DELAY / _RAISE / _SHORT_WRITE / _TORN_WRITE
    ms: float = 0.0  # virtual-clock advance for delays
    prefix_bytes: int = 0  # bytes that "reach the device" for partial writes
    remaining: int | None = 1  # firings left; None = unlimited
    skip: int = 0  # matching trips to let pass before firing
    exc_factory: Callable[[str], BaseException] | None = None


class FaultPlan:
    """A seeded, reproducible schedule of injected faults.

    Rules are declared with the fluent builders (:meth:`delay`,
    :meth:`fail`, :meth:`short_write`, :meth:`torn_write`) and fire in
    declaration order: the first non-exhausted rule whose site pattern
    matches a tripped site wins.  Every firing is appended to
    :attr:`injections`, so two runs of the same seeded scenario can be
    compared record-for-record.

    The plan is shared across threads (the HTTP server trips sites from
    worker threads); all bookkeeping happens under one internal lock.
    ``seed`` drives :attr:`rng`, the *only* sanctioned randomness for
    building randomized-but-reproducible scenarios.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self._lock = threading.Lock()
        self._rules: list[_Rule] = []
        self._virtual = 0.0  # seconds on the frozen clock
        self._injections: list[dict[str, object]] = []

    # -- builders ------------------------------------------------------
    def delay(
        self, site: str, ms: float, *, times: int | None = None, after: int = 0
    ) -> "FaultPlan":
        """Advance the virtual clock by ``ms`` when ``site`` trips."""
        self._rules.append(
            _Rule(site=site, action=_DELAY, ms=ms, remaining=times, skip=after)
        )
        return self

    def fail(
        self,
        site: str,
        *,
        times: int | None = 1,
        after: int = 0,
        exc: Callable[[str], BaseException] | None = None,
    ) -> "FaultPlan":
        """Raise at ``site`` (an ``OSError(EIO)`` unless ``exc`` is given)."""
        self._rules.append(
            _Rule(site=site, action=_RAISE, remaining=times, skip=after, exc_factory=exc)
        )
        return self

    def short_write(
        self, site: str, *, prefix_bytes: int, times: int | None = 1, after: int = 0
    ) -> "FaultPlan":
        """Write only ``prefix_bytes`` then raise ``ENOSPC`` (rollback works)."""
        self._rules.append(
            _Rule(
                site=site,
                action=_SHORT_WRITE,
                prefix_bytes=prefix_bytes,
                remaining=times,
                skip=after,
            )
        )
        return self

    def torn_write(
        self, site: str, *, prefix_bytes: int, times: int | None = 1, after: int = 0
    ) -> "FaultPlan":
        """Like :meth:`short_write`, but the rollback truncate fails too.

        The torn frame stays on disk — the crash shape the WAL reader's
        torn-tail recovery must absorb on the next open.
        """
        self._rules.append(
            _Rule(
                site=site,
                action=_TORN_WRITE,
                prefix_bytes=prefix_bytes,
                remaining=times,
                skip=after,
            )
        )
        return self

    # -- introspection -------------------------------------------------
    @property
    def injections(self) -> tuple[dict[str, object], ...]:
        """Every fault fired so far, in firing order (for replay asserts)."""
        with self._lock:
            return tuple(dict(entry) for entry in self._injections)

    def now(self) -> float:
        """Seconds on the plan's frozen virtual clock."""
        with self._lock:
            return self._virtual

    def advance(self, ms: float) -> None:
        """Manually advance the virtual clock (breaker-cooldown tests)."""
        with self._lock:
            self._virtual += ms / 1000.0

    # -- firing --------------------------------------------------------
    def _take(self, site: str, actions: tuple[str, ...]) -> _Rule | None:
        """Consume and return the first matching live rule, else ``None``."""
        with self._lock:
            for rule in self._rules:
                if rule.action not in actions:
                    continue
                if not fnmatchcase(site, rule.site):
                    continue
                if rule.skip > 0:
                    rule.skip -= 1
                    return None
                if rule.remaining is not None:
                    if rule.remaining == 0:
                        continue
                    rule.remaining -= 1
                record: dict[str, object] = {"site": site, "action": rule.action}
                if rule.action == _DELAY:
                    record["ms"] = rule.ms
                    self._virtual += rule.ms / 1000.0
                elif rule.action in (_SHORT_WRITE, _TORN_WRITE):
                    record["prefix_bytes"] = rule.prefix_bytes
                self._injections.append(record)
                return rule
            return None

    def trip(self, site: str) -> None:
        """Fire any delay, then any raise, scheduled at ``site``."""
        self._take(site, (_DELAY,))
        rule = self._take(site, (_RAISE,))
        if rule is not None:
            if rule.exc_factory is not None:
                raise rule.exc_factory(site)
            raise OSError(errno.EIO, f"injected fault at {site}")

    def write_rule(self, site: str) -> _Rule | None:
        """The pending short/torn-write rule for ``site``, if any."""
        return self._take(site, (_SHORT_WRITE, _TORN_WRITE))


# ----------------------------------------------------------------------
# The armed plan and the clock
# ----------------------------------------------------------------------
_active: FaultPlan | None = None


@contextmanager
def armed(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` process-wide for the duration of the block.

    Only one plan may be armed at a time (chaos scenarios own the whole
    process — server worker threads must see the same plan the test
    armed).
    """
    global _active
    if _active is not None:
        raise RuntimeError("a FaultPlan is already armed")
    _active = plan
    try:
        yield plan
    finally:
        _active = None


def active_plan() -> FaultPlan | None:
    """The armed plan, or ``None`` (the common, zero-overhead case)."""
    return _active


def trip(site: str) -> None:
    """Injection hook: fire the armed plan's rules for ``site``, if any."""
    plan = _active
    if plan is not None:
        plan.trip(site)


def now() -> float:
    """Monotonic seconds — the armed plan's virtual clock, else wall time.

    Every latency-sensitive decision in the serving stack (deadline
    expiry, breaker cooldowns, retry backoff bookkeeping) reads this
    instead of ``time.monotonic()`` so seeded fault plans control time
    deterministically.
    """
    plan = _active
    if plan is not None:
        return plan.now()
    return time.monotonic()


# ----------------------------------------------------------------------
# Request deadlines
# ----------------------------------------------------------------------
class DeadlineExceeded(Exception):
    """A strict deadline expired mid-computation; no partial answer exists."""


class Deadline:
    """One request's time budget plus its degradation ledger.

    Built from a ``timeout_ms`` request field (or ``--deadline-ms`` on
    the CLI), armed around the engine compute by the executors, and
    polled by the scatter/rank-scan loops.  The ledger counts how the
    budget was spent: shards whose contribution is exactly accounted
    (scanned, or provably pruned by the score bounds) versus shards
    skipped past expiry or lost to injected/real faults — the payload
    of the response's ``degraded`` envelope.
    """

    __slots__ = (
        "budget_ms",
        "_expires_at",
        "shards_answered",
        "shards_skipped",
        "shards_failed",
        "_reasons",
    )

    def __init__(self, budget_ms: float) -> None:
        if budget_ms <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget_ms}")
        self.budget_ms = budget_ms
        self._expires_at = now() + budget_ms / 1000.0
        self.shards_answered = 0
        self.shards_skipped = 0
        self.shards_failed = 0
        self._reasons: list[str] = []

    def expired(self) -> bool:
        return now() >= self._expires_at

    def remaining_ms(self) -> float:
        return max(0.0, (self._expires_at - now()) * 1000.0)

    # -- the degradation ledger ---------------------------------------
    def note_answered(self, count: int = 1) -> None:
        self.shards_answered += count

    def note_skipped(self, count: int, reason: str) -> None:
        self.shards_skipped += count
        if reason not in self._reasons:
            self._reasons.append(reason)

    def note_failed(self, reason: str) -> None:
        self.shards_failed += 1
        if reason not in self._reasons:
            self._reasons.append(reason)

    @property
    def degraded(self) -> bool:
        return self.shards_skipped > 0 or self.shards_failed > 0

    def to_dict(self) -> dict[str, object]:
        """The response's ``degraded`` envelope."""
        return {
            "budget_ms": self.budget_ms,
            "shards_answered": self.shards_answered,
            "shards_skipped": self.shards_skipped + self.shards_failed,
            "reason": "; ".join(self._reasons) if self._reasons else "deadline",
        }


_tls = threading.local()


@contextmanager
def deadline_scope(deadline: Deadline) -> Iterator[Deadline]:
    """Arm an *absorbing* deadline: scatter loops degrade to partials."""
    previous = getattr(_tls, "scope", None)
    _tls.scope = (deadline, False)
    try:
        yield deadline
    finally:
        _tls.scope = previous


@contextmanager
def strict_deadline_scope(deadline: Deadline) -> Iterator[Deadline]:
    """Arm a *strict* deadline: expiry raises :class:`DeadlineExceeded`.

    Used around rank arithmetic (the why-not pipeline), where a partial
    scan would be a silently-wrong count rather than an honest partial.
    """
    previous = getattr(_tls, "scope", None)
    _tls.scope = (deadline, True)
    try:
        yield deadline
    finally:
        _tls.scope = previous


@contextmanager
def shielded() -> Iterator[None]:
    """Clear any ambient deadline: the shielded compute is always exact."""
    previous = getattr(_tls, "scope", None)
    _tls.scope = None
    try:
        yield
    finally:
        _tls.scope = previous


def current_deadline() -> Deadline | None:
    """The thread's ambient deadline (absorbing or strict), if armed."""
    scope = getattr(_tls, "scope", None)
    return None if scope is None else scope[0]


def current_scope() -> tuple[Deadline, bool] | None:
    """The ambient ``(deadline, strict)`` pair, if armed."""
    return getattr(_tls, "scope", None)


def check_deadline() -> None:
    """Raise :class:`DeadlineExceeded` if the ambient deadline expired.

    The polling hook for exact computations (rank scans): a no-op when
    no deadline is armed, and *always* a raise on expiry — an exact scan
    has no honest partial result to fall back to.
    """
    scope = getattr(_tls, "scope", None)
    if scope is None:
        return
    deadline = scope[0]
    if deadline.expired():
        raise DeadlineExceeded(
            f"deadline of {deadline.budget_ms:g}ms exceeded during an exact scan"
        )


# ----------------------------------------------------------------------
# Plan-driven file faults (the WAL's injection surface)
# ----------------------------------------------------------------------
class _FaultInjectingFile:
    """A file handle whose ops are injection sites of the armed plan.

    Sites are ``<prefix>.write`` / ``.sync`` / ``.read`` / ``.truncate``
    (``prefix`` is ``"wal"`` for the write-ahead log).  Short/torn write
    rules flush the configured prefix through before raising ``ENOSPC``,
    so the bytes genuinely reach the underlying file — exactly the
    half-frame shapes the WAL's rollback and torn-tail recovery handle.
    """

    def __init__(self, inner: Any, prefix: str) -> None:
        self._inner = inner
        self._prefix = prefix
        self._fail_truncate = False

    # -- faultable operations ------------------------------------------
    def write(self, data: bytes) -> int:
        plan = _active
        if plan is None:
            return self._inner.write(data)
        site = f"{self._prefix}.write"
        plan.trip(site)
        rule = plan.write_rule(site)
        if rule is None:
            return self._inner.write(data)
        prefix_bytes = min(rule.prefix_bytes, len(data))
        self._inner.write(data[:prefix_bytes])
        self._inner.flush()
        if rule.action == _TORN_WRITE:
            self._fail_truncate = True
        raise OSError(
            errno.ENOSPC,
            f"injected {rule.action} at {site} after {prefix_bytes} bytes",
        )

    def truncate(self, size: int | None = None) -> int:
        if self._fail_truncate:
            self._fail_truncate = False
            raise OSError(
                errno.EIO, "injected truncate failure (torn frame left on disk)"
            )
        plan = _active
        if plan is not None:
            plan.trip(f"{self._prefix}.truncate")
        if size is None:
            return self._inner.truncate()
        return self._inner.truncate(size)

    def sync(self) -> None:
        plan = _active
        if plan is not None:
            plan.trip(f"{self._prefix}.sync")
        inner_sync = getattr(self._inner, "sync", None)
        if inner_sync is not None:
            inner_sync()
        else:
            self._inner.flush()
            os.fsync(self._inner.fileno())

    def read(self, *args: Any) -> Any:
        plan = _active
        if plan is not None:
            plan.trip(f"{self._prefix}.read")
        return self._inner.read(*args)

    # -- transparent passthroughs --------------------------------------
    def flush(self) -> None:
        self._inner.flush()

    def close(self) -> None:
        self._inner.close()

    def seek(self, *args: Any) -> int:
        return self._inner.seek(*args)

    def tell(self) -> int:
        return self._inner.tell()

    def fileno(self) -> int:
        return self._inner.fileno()

    def __enter__(self) -> "_FaultInjectingFile":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __iter__(self) -> Any:
        return iter(self._inner)


class _GuardedOpener:
    """An opener that injects faults only while a plan is armed.

    Unarmed, it returns the raw handle of the wrapped opener — the hot
    path pays one global ``None`` check per *open*, nothing per I/O op.
    """

    __slots__ = ("_inner", "_prefix")

    def __init__(self, inner: Callable[[str, str], Any], prefix: str) -> None:
        self._inner = inner
        self._prefix = prefix

    def __call__(self, path: str, mode: str = "r") -> Any:
        plan = _active
        if plan is None:
            return self._inner(path, mode)
        plan.trip(f"{self._prefix}.open")
        return _FaultInjectingFile(self._inner(path, mode), self._prefix)


def guarded_opener(
    inner: Callable[[str, str], Any] = open, prefix: str = "wal"
) -> Callable[[str, str], Any]:
    """Wrap ``inner`` so its handles become injection sites when armed."""
    if isinstance(inner, _GuardedOpener):
        return inner
    return _GuardedOpener(inner, prefix)


# ----------------------------------------------------------------------
# Imperative countdown faults (grown out of tests/service/flaky_io.py)
# ----------------------------------------------------------------------
class FlakyFile:
    """A file wrapper with imperative countdown-armed I/O faults.

    The unit-test counterpart to the plan-driven wrapper above: tests
    that want one specific failure *right now* set a countdown knob on
    the shared :class:`FlakyOpener` instead of declaring a plan.

    * ``write_errors`` — fail the next N writes outright (nothing hits
      the device).
    * ``short_write_bytes`` — one-shot: the next write persists only
      this prefix, then raises ``ENOSPC`` (the frame is half on disk).
    * ``sync_errors`` — fail the next N ``sync()`` calls (an armed
      handle exposes ``sync``, which the WAL prefers over ``os.fsync``
      so fault tests need no real disk).
    * ``truncate_errors`` — fail the next N truncates: rollback itself
      fails, leaving the torn frame for recovery to clean.
    * ``fail_reads`` — persistent: every read raises ``EIO``.
    """

    def __init__(self, inner: Any, knobs: "FlakyOpener") -> None:
        self._inner = inner
        self._knobs = knobs

    def write(self, data: bytes) -> int:
        knobs = self._knobs
        if knobs.short_write_bytes is not None:
            prefix = data[: knobs.short_write_bytes]
            knobs.short_write_bytes = None
            self._inner.write(prefix)
            self._inner.flush()
            raise OSError(errno.ENOSPC, "injected device full mid-write")
        if knobs.write_errors > 0:
            knobs.write_errors -= 1
            raise OSError(errno.EIO, "injected write error")
        return self._inner.write(data)

    def sync(self) -> None:
        knobs = self._knobs
        if knobs.sync_errors > 0:
            knobs.sync_errors -= 1
            raise OSError(errno.EIO, "injected fsync failure")
        # Un-armed: flush is enough — fault tests run on real files but
        # must not require a real fsync round-trip per append.
        self._inner.flush()

    def read(self, *args: Any) -> Any:
        if self._knobs.fail_reads:
            raise OSError(errno.EIO, "injected read error (EIO)")
        return self._inner.read(*args)

    def truncate(self, size: int | None = None) -> int:
        knobs = self._knobs
        if knobs.truncate_errors > 0:
            knobs.truncate_errors -= 1
            raise OSError(errno.EIO, "injected truncate error")
        if size is None:
            return self._inner.truncate()
        return self._inner.truncate(size)

    def flush(self) -> None:
        self._inner.flush()

    def close(self) -> None:
        self._inner.close()

    def seek(self, *args: Any) -> int:
        return self._inner.seek(*args)

    def tell(self) -> int:
        return self._inner.tell()

    def fileno(self) -> int:
        return self._inner.fileno()

    def __enter__(self) -> "FlakyFile":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __iter__(self) -> Any:
        return iter(self._inner)


class FlakyOpener:
    """Shared countdown knobs + the opener that arms them on every handle."""

    def __init__(self) -> None:
        self.opened = 0
        self.write_errors = 0
        self.short_write_bytes: int | None = None
        self.sync_errors = 0
        self.truncate_errors = 0
        self.fail_reads = False

    def __call__(self, path: str, mode: str = "r") -> FlakyFile:
        self.opened += 1
        return FlakyFile(open(path, mode), self)
