# Developer entry points for the YASK reproduction.
#
#   make test        — the tier-1 suite (ROADMAP.md's verify command)
#   make bench-smoke — the E9 + E10 executor experiments and the E11
#                      kernel experiment (fast, assert the cold/warm and
#                      batch speedup floors for queries and why-not
#                      questions, plus the kernel's >=3x rank_all and
#                      >=2x cold why-not floors)
#   make bench-json  — refresh BENCH_E9/E10/E11.json at the repo root
#                      (machine-readable perf trajectory across PRs)
#   make lint        — byte-compile every source, test and benchmark
#                      file (catches import-time and syntax breakage
#                      without third-party tools)
#   make docs-check  — every GET/POST route in server.py must appear
#                      in docs/API.md

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke bench-json lint docs-check

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_e9_executor.py benchmarks/bench_e10_whynot_executor.py benchmarks/bench_e11_kernel.py -q

bench-json:
	$(PYTHON) benchmarks/bench_json.py

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	@echo "lint ok: all sources byte-compile"

docs-check:
	@missing=0; \
	for route in $$(grep -oE '"/(healthz|api/[a-z/]+)"' src/repro/service/server.py | tr -d '"' | sort -u); do \
		if ! grep -q -- "$$route" docs/API.md; then \
			echo "docs-check: route $$route is not documented in docs/API.md"; \
			missing=1; \
		fi; \
	done; \
	if [ $$missing -ne 0 ]; then exit 1; fi; \
	echo "docs-check ok: every server route is documented in docs/API.md"
