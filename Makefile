# Developer entry points for the YASK reproduction.
#
#   make test        — the tier-1 suite (ROADMAP.md's verify command).
#                      pytest.ini deselects @pytest.mark.slow here (the
#                      chaos/hammer/deep-property tier); the dedicated
#                      targets below re-enable it with
#                      -m "slow or not slow" (marker policy:
#                      docs/DEVELOPMENT.md)
#   make test-recovery — the durability tier at a deeper hypothesis
#                      budget: the crash-point recovery property plus
#                      the WAL, fault-injection and follower suites
#                      (its own CI job; tier-1 runs the same files at
#                      the default budget)
#   make bench-smoke — the floor-asserting experiments: E9 + E10
#                      (executor tiers: cold/warm and batch floors),
#                      E11 (kernel: >=3x rank_all, >=2x cold why-not),
#                      E12 (sharding: >=1.8x cold top-k, >=1.5x
#                      cold why-not at 4 shards vs 1), E13 (live
#                      mutation: >=5x incremental ingest vs rebuild,
#                      >50% warm top-k hit rate under writes) and E14
#                      (durability: logged ingest >=0.7x unlogged,
#                      snapshot recovery >=5x vs full-log rebuild)
#                      and E15 (process workers: top-k parity with the
#                      threaded scatter, shared segments freed, and
#                      >=1.5x proc vs threads at 4 shards on hosts
#                      with >=4 cores)
#   make bench-json  — refresh BENCH_E9/…/E15.json at the repo root
#                      (machine-readable perf trajectory)
#   make lint        — byte-compile every source, test and benchmark
#                      file, then run yasklint (the project-invariant
#                      static analyser in tools/analysis/yasklint —
#                      rule catalogue in docs/DEVELOPMENT.md) over src/
#                      and mypy (skipped with a notice when not
#                      installed; the CI analysis job always runs it)
#   make test-chaos  — the graceful-degradation suite: seeded fault
#                      plans (tests/chaos/) replayed against live
#                      in-process servers, asserting every response is
#                      exact, honestly degraded or a structured error
#                      (its own CI job; deterministic — same seed,
#                      same outcome, no wall-clock sleeps)
#   make test-lockdep — the concurrency suites with the runtime
#                      lock-order sanitizer enabled (YASK_LOCKDEP=1):
#                      hammer tests + the analysis test suite
#   make test-procpool — the process-worker tier: the cross-process
#                      parity property suite plus the kill -9 /
#                      fault-plan / mutate-while-scanning chaos suite
#                      (its own CI job across interpreter versions)
#   make docs-check  — every GET/POST route in server.py must appear
#                      in docs/API.md, and every runnable fenced
#                      Python snippet in README.md / docs/API.md /
#                      docs/OPERATIONS.md must execute cleanly against
#                      a live in-process server
#                      (tools/check_doc_snippets.py)

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-recovery test-chaos test-lockdep test-procpool bench-smoke bench-json lint docs-check

# Re-enables @pytest.mark.slow suites that pytest.ini's default
# deselects; the dedicated tiers below must run them.
ALL_MARKS = -m "slow or not slow"

test:
	$(PYTHON) -m pytest -x -q

test-recovery:
	YASK_RECOVERY_EXAMPLES=40 $(PYTHON) -m pytest tests/properties/test_prop_recovery.py tests/service/test_wal.py tests/service/test_wal_faults.py tests/service/test_follower.py -q $(ALL_MARKS)

test-chaos:
	$(PYTHON) -m pytest tests/chaos -q $(ALL_MARKS)

test-procpool:
	$(PYTHON) -m pytest tests/properties/test_prop_procpool.py tests/chaos/test_procpool_chaos.py tests/service/test_socket_hygiene.py -q $(ALL_MARKS)

bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_e9_executor.py benchmarks/bench_e10_whynot_executor.py benchmarks/bench_e11_kernel.py benchmarks/bench_e12_sharding.py benchmarks/bench_e13_mutations.py benchmarks/bench_e14_durability.py benchmarks/bench_e15_procpool.py -q $(ALL_MARKS)

bench-json:
	$(PYTHON) benchmarks/bench_json.py

test-lockdep:
	YASK_LOCKDEP=1 $(PYTHON) -m pytest tests/analysis tests/service/test_concurrency.py tests/service/test_mutation_hammer.py tests/service/test_stats_snapshot.py tests/service/test_follower.py tests/properties/test_prop_skyband.py -q $(ALL_MARKS)

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples tools
	$(PYTHON) -m tools.analysis.yasklint src
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy --config-file mypy.ini -p repro && echo "lint ok: mypy clean"; \
	else \
		echo "lint: mypy not installed, skipping (the CI analysis job runs it)"; \
	fi
	@echo "lint ok: sources byte-compile and yasklint is clean"

docs-check:
	@missing=0; \
	for route in $$(grep -oE '"/(healthz|api/[a-z/]+)"' src/repro/service/server.py | tr -d '"' | sort -u); do \
		if ! grep -q -- "$$route" docs/API.md; then \
			echo "docs-check: route $$route is not documented in docs/API.md"; \
			missing=1; \
		fi; \
	done; \
	if [ $$missing -ne 0 ]; then exit 1; fi; \
	echo "docs-check ok: every server route is documented in docs/API.md"
	$(PYTHON) tools/check_doc_snippets.py
